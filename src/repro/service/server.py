"""Asyncio wire front for a :class:`~repro.service.StreamEngine`.

Every connection starts in **protocol 1**: newline-delimited JSON over
TCP -- the simplest wire format the stdlib can serve and every language
can speak.  One request per line, one response per line (see
``docs/SERVICE.md`` for the full schema)::

    {"op": "append", "stream": "sku-42", "values": [3, 1, 4],
     "method": "min-merge", "buckets": 32}
    {"ok": true, "accepted": 3}

    {"op": "query", "stream": "sku-42"}
    {"ok": true, "histogram": {"error": ..., "segments": [...],
                               "meta": {...}}}

A ``hello`` request (``{"op": "hello", "proto": [1, 2]}``) negotiates
the connection up to **protocol 2**: the length-prefixed binary framing
of :mod:`repro.service.wire` (``docs/WIRE.md``).  Binary append frames
carry raw float64 values that travel socket -> ``numpy.frombuffer`` ->
the engine's batched ``extend()`` with zero per-item Python objects --
the ingest hot path the JSON format cannot reach.  JSON remains the
default and the fallback; a connection that never says hello is served
exactly as before.

Operations: ``hello``, ``append`` (creates the stream on first use from
the request's config), ``query``, ``stats``, ``checkpoint``,
``streams``, ``ping``.  Errors come back as ``{"ok": false, "error":
<code>, "message": ...}`` with the codes of the unified taxonomy
(:mod:`repro.service.errors`, shared with the HTTP facade):
``backpressure`` (queue bound hit -- back off and retry), ``invalid``
(bad parameters), ``unknown-stream`` (the stream id is not registered),
``empty`` (query before any data), ``bad-request`` (malformed JSON,
malformed binary frame, missing fields, non-finite values),
``unknown-op``, ``unavailable`` (cluster worker failed mid-request),
and ``internal``.  In binary mode a *framing* error
(bad magic, bad version, oversized length) additionally closes the
connection: a desynchronized byte stream cannot be re-synchronized.

The event loop never blocks on the engine: every engine call runs in a
thread-pool executor, so slow batch applies on one connection do not
stall others.  The engine itself is thread-safe (per-stream locks), so
any number of connections -- on either protocol -- may hit the same
stream.
"""

from __future__ import annotations

import asyncio
import json
import threading
from math import isfinite
from typing import Optional, Sequence

from repro.exceptions import InvalidParameterError, ReproError
from repro.service import wire
from repro.service.engine import StreamEngine
from repro.service.errors import classify_exception

#: Refuse request lines longer than this many bytes (a malformed or
#: hostile client should not buffer unbounded memory server-side).
MAX_LINE_BYTES = 64 * 1024 * 1024

_STREAM_CONFIG_KEYS = (
    "method",
    "buckets",
    "epsilon",
    "universe",
    "window",
    "backend",
)

_SERVER_NAME = "repro-histogram"

#: First byte of the frame magic (0xF5).  It can never begin a JSON
#: document (it is not even a legal UTF-8 lead byte), so peeking one byte
#: distinguishes a stray binary frame from a JSON line without waiting
#: for a newline that a binary frame will never contain.
_MAGIC_BYTE = bytes([wire.MAGIC >> 8])


class StreamServer:
    """Serve one engine over TCP: JSON lines, with negotiated binary.

    Parameters
    ----------
    engine:
        The :class:`StreamEngine` to expose; the server never closes it
        (the caller owns its lifecycle).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    protocols:
        Protocol numbers this server advertises in ``hello`` responses.
        The default offers both JSON lines (1) and binary frames (2);
        pass ``(1,)`` to pin every connection to JSON (the CLI's
        ``--no-binary``).
    executor_workers:
        Size of a dedicated thread pool for engine calls.  ``None`` (the
        default) uses the loop's default executor -- right for a
        single-process engine, whose per-stream locks serialize most
        work anyway.  The cluster router sets this higher: its "engine"
        calls are blocking round trips to backend workers, so the pool
        size caps the router's concurrent in-flight backend requests.
    """

    def __init__(
        self,
        engine: StreamEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        protocols: Sequence[int] = wire.ALL_PROTOCOLS,
        executor_workers: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.executor_workers = executor_workers
        self.protocols = tuple(int(p) for p in protocols)
        if wire.PROTO_JSON not in self.protocols:
            raise InvalidParameterError(
                "the server must always speak protocol 1 (JSON lines); "
                f"got protocols={self.protocols}"
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (on the running loop)."""
        self._loop = asyncio.get_running_loop()
        if self.executor_workers is not None:
            from concurrent.futures import ThreadPoolExecutor

            # asyncio.run() shuts the default executor down with the
            # loop, so the pool's lifetime tracks the server's.
            self._loop.set_default_executor(
                ThreadPoolExecutor(
                    max_workers=self.executor_workers,
                    thread_name_prefix="repro-server-io",
                )
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`stop` or cancellation."""
        if self._server is None:
            await self.start()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            # stop() closes the server from another thread, which lands
            # here as a cancellation of the serving future -- a clean exit.
            pass

    def run(self) -> None:
        """Blocking entry point (the CLI ``serve`` subcommand)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass

    def start_in_background(self) -> "StreamServer":
        """Run the server on a daemon thread; returns once it is bound.

        The test/smoke entry point: callers talk to it with
        :class:`~repro.service.client.ServiceClient` and call
        :meth:`stop` when done.
        """
        self._thread = threading.Thread(
            target=self.run, name="repro-stream-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        """Stop accepting connections and unwind the background thread."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None:
            loop.call_soon_threadsafe(server.close)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- connection handling (protocol state machine) ------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One client: JSON lines until ``hello`` negotiates binary."""
        try:
            while True:
                first = await reader.read(1)
                if not first:
                    break
                if first in b"\r\n":
                    continue
                if first == _MAGIC_BYTE:
                    # A binary frame before negotiation: refuse loudly
                    # rather than feeding frame bytes to the JSON parser
                    # (or blocking on a newline the frame will never send).
                    writer.write(
                        _json_error(
                            "bad-request",
                            "binary frame before negotiation; send "
                            '{"op": "hello", "proto": [1, 2]} first',
                        )
                    )
                    await writer.drain()
                    break
                try:
                    line = first + await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_json_error("bad-request", "request too long"))
                    await writer.drain()
                    break
                if not line.strip():
                    continue
                request = _parse_json_line(line)
                if isinstance(request, dict) and request.get("op") == "hello":
                    ok, payload, proto = self._negotiate(request)
                    writer.write(
                        _encode_json(ok, payload)
                    )
                    await writer.drain()
                    if ok and proto == wire.PROTO_BINARY:
                        await self._serve_binary(reader, writer)
                        break
                    continue
                ok, payload = await self._dispatch(request)
                writer.write(_encode_json(ok, payload))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # CancelledError: the loop is tearing down (stop());
                # finishing normally here keeps teardown quiet.
                pass

    async def _serve_binary(self, reader, writer) -> None:
        """Protocol 2: length-prefixed frames until EOF or framing error."""
        while True:
            try:
                header = await reader.readexactly(wire.HEADER_BYTES)
            except asyncio.IncompleteReadError:
                return  # clean EOF (possibly mid-header on abrupt close)
            try:
                opcode, length = wire.decode_header(header)
                payload = await reader.readexactly(length)
            except wire.WireError as exc:
                # Framing errors desynchronize the stream: answer and close.
                writer.write(_frame_error("bad-request", str(exc)))
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            ok, response = await self._dispatch_frame(opcode, payload)
            writer.write(_encode_frame(ok, response))
            await writer.drain()

    async def _dispatch_frame(self, opcode: int, payload) -> tuple[bool, dict]:
        if opcode == wire.OP_APPEND:
            try:
                meta, values = wire.decode_append_payload(payload)
            except wire.WireError as exc:
                return False, {"error": "bad-request", "message": str(exc)}
            return await self._run_handler(self._append_array, meta, values)
        if opcode == wire.OP_JSON:
            try:
                request = wire.decode_json_payload(payload)
            except wire.WireError as exc:
                return False, {"error": "bad-request", "message": str(exc)}
            if request.get("op") == "hello":
                # Re-negotiation inside binary mode is a no-op: report
                # the live protocol without switching anything.
                ok, response, _proto = self._negotiate(
                    request, active=wire.PROTO_BINARY
                )
                return ok, response
            return await self._dispatch(request)
        return False, {
            "error": "bad-request",
            "message": f"unexpected opcode 0x{opcode:02x} in a request",
        }

    # -- negotiation ---------------------------------------------------------

    def _negotiate(
        self, request: dict, *, active: Optional[int] = None
    ) -> tuple[bool, dict, Optional[int]]:
        """Handle ``hello``; returns ``(ok, payload, negotiated_proto)``."""
        offered = request.get("proto", [wire.PROTO_JSON])
        if not isinstance(offered, (list, tuple)):
            return (
                False,
                {
                    "error": "bad-request",
                    "message": '"proto" must be a JSON array of protocol '
                    "numbers",
                },
                None,
            )
        chosen = wire.negotiate(offered, self.protocols)
        if chosen is None:
            return (
                False,
                {
                    "error": "bad-request",
                    "message": f"no common protocol: client offered "
                    f"{list(offered)}, server speaks "
                    f"{list(self.protocols)}",
                },
                None,
            )
        if active is not None:
            chosen = active
        payload = {
            "proto": chosen,
            "server": {
                "name": _SERVER_NAME,
                "wire_version": wire.WIRE_VERSION,
                "protocols": list(self.protocols),
            },
        }
        return True, payload, chosen

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, request) -> tuple[bool, dict]:
        """Route one decoded request; returns ``(ok, payload)``."""
        if isinstance(request, _BadRequest):
            return False, {"error": "bad-request", "message": request.message}
        if not isinstance(request, dict) or "op" not in request:
            return False, {
                "error": "bad-request",
                "message": 'request must be {"op": ..., ...}',
            }
        op = request["op"]
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if handler is None:
            return False, {
                "error": "unknown-op",
                "message": f"unknown op {op!r}",
            }
        return await self._run_handler(handler, request)

    async def _run_handler(self, handler, *args) -> tuple[bool, dict]:
        """Run an engine-touching handler on the executor; map errors.

        The exception -> code mapping is
        :func:`repro.service.errors.classify_exception` -- the single
        taxonomy shared with the HTTP facade, so every transport
        classifies the same failure identically (a proxied backend's
        :class:`~repro.service.errors.ServiceError` forwards its code
        instead of being flattened to ``internal``).
        """
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(None, handler, *args)
        except (ReproError, KeyError, TypeError) as exc:
            code, message = classify_exception(exc)
            return False, {"error": str(code), "message": message}
        return True, payload

    # -- operations (run on executor threads) -------------------------------

    def _stream_for(self, request: dict):
        """Create-or-fetch the request's stream from its inline config.

        Requests that carry no config address the stream as it already
        exists (whatever its method); config keys are only consulted at
        creation or to verify a match.
        """
        stream_id = str(request["stream"])
        config = {
            key: request[key]
            for key in _STREAM_CONFIG_KEYS
            if request.get(key) is not None
        }
        if not config and stream_id in self.engine.streams():
            return self.engine.handle(stream_id)
        return self.engine.stream(stream_id, **config)

    def _op_append(self, request: dict) -> dict:
        values = request["values"]
        if isinstance(values, (int, float)):
            values = [values]
        if not isinstance(values, (list, tuple)):
            raise InvalidParameterError(
                "values must be a JSON array or a single number"
            )
        for v in values:
            if isinstance(v, float) and not isfinite(v):
                raise InvalidParameterError(
                    "append payload contains non-finite (NaN/inf) values"
                )
        handle = self._stream_for(request)
        accepted = handle.append(values)
        return {"accepted": accepted, "stream": handle.stream_id}

    def _append_array(self, meta: dict, values) -> dict:
        """Zero-copy append: the binary frame's ndarray goes straight in.

        ``values`` is the read-only float64 view the wire layer built
        over the frame payload; it reaches the summaries' vectorized
        ``extend()`` without any per-item conversion.
        """
        handle = self._stream_for(meta)
        accepted = handle.append(values)
        return {"accepted": accepted, "stream": handle.stream_id}

    def _op_query(self, request: dict) -> dict:
        stream_id = str(request["stream"])
        if bool(request.get("drain")):
            self.engine.drain()
        hist = self.engine.histogram(stream_id)
        return {"stream": stream_id, "histogram": hist.to_dict()}

    def _op_stats(self, request: dict) -> dict:
        stream = request.get("stream")
        stats = self.engine.stats(None if stream is None else str(stream))
        return {"stats": stats}

    def _op_checkpoint(self, request: dict) -> dict:
        stream = request.get("stream")
        generations = self.engine.checkpoint(
            None if stream is None else str(stream)
        )
        return {"generations": generations}

    def _op_streams(self, request: dict) -> dict:
        return {"streams": list(self.engine.streams())}

    def _op_drain(self, request: dict) -> dict:
        """Barrier: every accepted batch applied before the response."""
        self.engine.drain()
        return {"drained": True}

    def _op_adopt(self, request: dict) -> dict:
        """Cluster-internal: recover a manifested stream from shared disk."""
        handle = self.engine.adopt(str(request["stream"]))
        return {
            "stream": handle.stream_id,
            "items_seen": handle.items_seen,
        }

    def _op_release(self, request: dict) -> dict:
        """Cluster-internal: drain + snapshot + drop a stream (handoff)."""
        generation = self.engine.release(
            str(request["stream"]),
            checkpoint=bool(request.get("checkpoint", True)),
        )
        return {"stream": str(request["stream"]), "generation": generation}

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}


class _BadRequest:
    """Sentinel for an unparseable request line (carries the message)."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message


def _parse_json_line(line: bytes):
    try:
        return json.loads(line)
    except ValueError:
        return _BadRequest("request is not valid JSON")


# -- response encoders -------------------------------------------------------


def _encode_json(ok: bool, payload: dict) -> bytes:
    body = {"ok": True, **payload} if ok else {"ok": False, **payload}
    return (json.dumps(body, separators=(",", ":")) + "\n").encode("utf-8")


def _json_error(code: str, message: str) -> bytes:
    return _encode_json(False, {"error": code, "message": message})


def _encode_frame(ok: bool, payload: dict) -> bytes:
    if ok:
        return wire.encode_json_frame(wire.OP_OK, {"ok": True, **payload})
    return wire.encode_json_frame(wire.OP_ERR, {"ok": False, **payload})


def _frame_error(code: str, message: str) -> bytes:
    return _encode_frame(False, {"error": code, "message": message})


# Backwards-compatible re-exports: the client classes lived here before
# the v2 transport split (import sites: tests, benchmarks, user code).
from repro.service.client import ServiceClient, ServiceError  # noqa: E402,F401
