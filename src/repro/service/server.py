"""Asyncio wire front for a :class:`~repro.service.StreamEngine`.

Newline-delimited JSON over TCP -- the simplest wire format the stdlib
can serve and every language can speak.  One request per line, one
response per line (see ``docs/SERVICE.md`` for the full schema)::

    {"op": "append", "stream": "sku-42", "values": [3, 1, 4],
     "method": "min-merge", "buckets": 32}
    {"ok": true, "accepted": 3}

    {"op": "query", "stream": "sku-42"}
    {"ok": true, "histogram": {"error": ..., "segments": [...],
                               "meta": {...}}}

Operations: ``append`` (creates the stream on first use from the
request's config), ``query``, ``stats``, ``checkpoint``, ``streams``,
``ping``.  Errors come back as ``{"ok": false, "error": <code>,
"message": ...}`` with codes ``backpressure`` (queue bound hit -- back
off and retry), ``invalid`` (bad parameters / unknown stream),
``empty`` (query before any data), ``bad-request`` (malformed JSON or
missing fields), ``unknown-op``, and ``internal``.

The event loop never blocks on the engine: every engine call runs in a
thread-pool executor, so slow batch applies on one connection do not
stall others.  The engine itself is thread-safe (per-stream locks), so
any number of connections may hit the same stream.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Optional

from repro.exceptions import (
    BackpressureError,
    EmptySummaryError,
    InvalidParameterError,
    ReproError,
)
from repro.service.engine import StreamEngine

#: Refuse request lines longer than this many bytes (a malformed or
#: hostile client should not buffer unbounded memory server-side).
MAX_LINE_BYTES = 64 * 1024 * 1024

_STREAM_CONFIG_KEYS = ("method", "buckets", "epsilon", "universe", "window")


class StreamServer:
    """Serve one engine over newline-delimited JSON on TCP.

    Parameters
    ----------
    engine:
        The :class:`StreamEngine` to expose; the server never closes it
        (the caller owns its lifecycle).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        engine: StreamEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (on the running loop)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`stop` or cancellation."""
        if self._server is None:
            await self.start()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            # stop() closes the server from another thread, which lands
            # here as a cancellation of the serving future -- a clean exit.
            pass

    def run(self) -> None:
        """Blocking entry point (the CLI ``serve`` subcommand)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass

    def start_in_background(self) -> "StreamServer":
        """Run the server on a daemon thread; returns once it is bound.

        The test/smoke entry point: callers talk to it with
        :class:`ServiceClient` and call :meth:`stop` when done.
        """
        self._thread = threading.Thread(
            target=self.run, name="repro-stream-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        """Stop accepting connections and unwind the background thread."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None:
            loop.call_soon_threadsafe(server.close)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- request handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One client: read request lines, write response lines, forever."""
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_error("bad-request", "request too long"))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # CancelledError: the loop is tearing down (stop());
                # finishing normally here keeps teardown quiet.
                pass

    async def _dispatch(self, line: bytes) -> bytes:
        try:
            request = json.loads(line)
        except ValueError:
            return _error("bad-request", "request is not valid JSON")
        if not isinstance(request, dict) or "op" not in request:
            return _error("bad-request", 'request must be {"op": ..., ...}')
        op = request["op"]
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if handler is None:
            return _error("unknown-op", f"unknown op {op!r}")
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(None, handler, request)
        except BackpressureError as exc:
            return _error("backpressure", str(exc))
        except EmptySummaryError as exc:
            return _error("empty", str(exc))
        except (InvalidParameterError, KeyError, TypeError) as exc:
            return _error("invalid", f"{type(exc).__name__}: {exc}")
        except ReproError as exc:  # pragma: no cover - defensive
            return _error("internal", f"{type(exc).__name__}: {exc}")
        return _ok(payload)

    # -- operations (run on executor threads) -------------------------------

    def _stream_for(self, request: dict):
        """Create-or-fetch the request's stream from its inline config.

        Requests that carry no config address the stream as it already
        exists (whatever its method); config keys are only consulted at
        creation or to verify a match.
        """
        stream_id = str(request["stream"])
        config = {
            key: request[key]
            for key in _STREAM_CONFIG_KEYS
            if request.get(key) is not None
        }
        if not config and stream_id in self.engine.streams():
            return self.engine.handle(stream_id)
        return self.engine.stream(stream_id, **config)

    def _op_append(self, request: dict) -> dict:
        values = request["values"]
        if not isinstance(values, (list, tuple)):
            raise InvalidParameterError("values must be a JSON array")
        handle = self._stream_for(request)
        accepted = handle.append(values)
        return {"accepted": accepted, "stream": handle.stream_id}

    def _op_query(self, request: dict) -> dict:
        stream_id = str(request["stream"])
        if bool(request.get("drain")):
            self.engine.drain()
        hist = self.engine.histogram(stream_id)
        return {"stream": stream_id, "histogram": hist.to_dict()}

    def _op_stats(self, request: dict) -> dict:
        stream = request.get("stream")
        stats = self.engine.stats(None if stream is None else str(stream))
        return {"stats": stats}

    def _op_checkpoint(self, request: dict) -> dict:
        stream = request.get("stream")
        generations = self.engine.checkpoint(
            None if stream is None else str(stream)
        )
        return {"generations": generations}

    def _op_streams(self, request: dict) -> dict:
        return {"streams": list(self.engine.streams())}

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True}


def _ok(payload: dict) -> bytes:
    return (
        json.dumps({"ok": True, **payload}, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _error(code: str, message: str) -> bytes:
    return (
        json.dumps(
            {"ok": False, "error": code, "message": message},
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


class ServiceError(ReproError):
    """A server-side error response, surfaced client-side.

    Carries the wire error ``code`` (``backpressure``, ``invalid``,
    ``empty``, ...) so callers can branch without string-matching the
    message.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """Minimal blocking client for :class:`StreamServer` (tests, CLI, CI).

    One TCP connection, synchronous request/response.  Error responses
    raise :class:`ServiceError` (with :class:`BackpressureError` for the
    ``backpressure`` code so engine-side and wire-side callers catch the
    same exception type).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def request(self, payload: dict) -> dict:
        """Send one request dict, return the decoded response payload."""
        self._file.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            code = response.get("error", "internal")
            message = response.get("message", "")
            if code == "backpressure":
                raise BackpressureError(message)
            raise ServiceError(code, message)
        return response

    def append(self, stream: str, values, **config) -> int:
        """Append values to a stream (creating it from ``config``)."""
        response = self.request(
            {"op": "append", "stream": stream, "values": list(values), **config}
        )
        return response["accepted"]

    def query(self, stream: str, *, drain: bool = False) -> dict:
        """The stream's histogram as its wire dict (``drain=True`` for a
        barrier: all queued batches apply before the query runs)."""
        return self.request({"op": "query", "stream": stream, "drain": drain})[
            "histogram"
        ]

    def stats(self, stream: Optional[str] = None) -> dict:
        """Engine-wide (or per-stream) statistics."""
        payload = {"op": "stats"}
        if stream is not None:
            payload["stream"] = stream
        return self.request(payload)["stats"]

    def checkpoint(self, stream: Optional[str] = None) -> dict:
        """Force snapshots; returns ``{stream_id: generation}``."""
        payload = {"op": "checkpoint"}
        if stream is not None:
            payload["stream"] = stream
        return self.request(payload)["generations"]

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request({"op": "ping"}).get("pong"))
