"""Multi-tenant streaming service layer (``docs/SERVICE.md``).

Composes the library's layers into a long-lived deployment unit:

* :class:`StreamEngine` -- thread-safe core owning many named streams,
  with bounded write queues (admission control), snapshot-isolated
  queries, per-stream crash-consistent checkpoints, and per-tenant
  metrics.
* :class:`Session` / :class:`StreamHandle` -- the stateful public
  facade (``session.stream("sku-42", method="min-merge").append(xs)``);
  ``repro.summarize`` is a one-shot wrapper over this same path.
* :class:`StreamServer` / :class:`ServiceClient` -- newline-delimited
  JSON over TCP (asyncio front, stdlib-only client), exposed by the CLI
  as ``repro serve``.
"""

from repro.service.engine import StreamEngine
from repro.service.server import ServiceClient, ServiceError, StreamServer
from repro.service.session import Session, StreamHandle

__all__ = [
    "ServiceClient",
    "ServiceError",
    "Session",
    "StreamEngine",
    "StreamHandle",
    "StreamServer",
]
