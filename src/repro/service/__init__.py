"""Multi-tenant streaming service layer (``docs/SERVICE.md``).

Composes the library's layers into a long-lived deployment unit:

* :class:`StreamEngine` -- thread-safe core owning many named streams,
  with bounded write queues (admission control), snapshot-isolated
  queries, per-stream crash-consistent checkpoints, and per-tenant
  metrics.
* :class:`Session` / :class:`StreamHandle` -- the stateful public
  facade (``session.stream("sku-42", method="min-merge").append(xs)``);
  ``repro.summarize`` is a one-shot wrapper over this same path.
* :class:`StreamServer` / :class:`ServiceClient` -- the wire layer,
  exposed by the CLI as ``repro serve``.  Connections start on
  newline-delimited JSON (protocol 1) and may negotiate the zero-copy
  binary framing of :mod:`repro.service.wire` (protocol 2,
  ``docs/WIRE.md``) via the ``hello`` op; the client returns the typed
  results of :mod:`repro.service.types` either way.
"""

from repro.service.client import (
    BinaryTransport,
    JsonTransport,
    ServiceClient,
    ServiceError,
    Transport,
)
from repro.service.cluster import ClusterRouter, HashRing
from repro.service.engine import StreamEngine
from repro.service.server import StreamServer
from repro.service.session import Session, StreamHandle
from repro.service.types import (
    AppendResult,
    CheckpointResult,
    QueryResult,
    ServerInfo,
    StatsResult,
)

__all__ = [
    "AppendResult",
    "BinaryTransport",
    "CheckpointResult",
    "ClusterRouter",
    "HashRing",
    "JsonTransport",
    "QueryResult",
    "ServerInfo",
    "ServiceClient",
    "ServiceError",
    "Session",
    "StatsResult",
    "StreamEngine",
    "StreamHandle",
    "StreamServer",
    "Transport",
]
