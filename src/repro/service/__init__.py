"""Multi-tenant streaming service layer (``docs/SERVICE.md``).

Composes the library's layers into a long-lived deployment unit:

* :class:`StreamEngine` -- thread-safe core owning many named streams,
  with bounded write queues (admission control), snapshot-isolated
  queries, per-stream crash-consistent checkpoints, and per-tenant
  metrics.
* :class:`Session` / :class:`StreamHandle` -- the stateful public
  facade (``session.stream("sku-42", method="min-merge").append(xs)``);
  ``repro.summarize`` is a one-shot wrapper over this same path.
* :class:`StreamServer` / :class:`ServiceClient` -- the wire layer,
  exposed by the CLI as ``repro serve``.  Connections start on
  newline-delimited JSON (protocol 1) and may negotiate the zero-copy
  binary framing of :mod:`repro.service.wire` (protocol 2,
  ``docs/WIRE.md``) via the ``hello`` op; the client returns the typed
  results of :mod:`repro.service.types` either way.
* :class:`HttpFrontend` -- the HTTP/1.1 REST facade (``docs/REST.md``)
  mounted beside the TCP front over the same engine;
  ``ServiceClient.from_url("http://host:port")`` speaks it through the
  identical typed client API.
* :mod:`repro.service.errors` -- the unified error taxonomy
  (:class:`ErrorCode` + typed :class:`ServiceError` subclasses) shared
  by the JSON, binary, and HTTP surfaces.
"""

from repro.service.client import (
    BinaryTransport,
    JsonTransport,
    ServiceClient,
    Transport,
)
from repro.service.cluster import ClusterRouter, HashRing, Rebalancer
from repro.service.engine import StreamEngine
from repro.service.errors import (
    BadRequestError,
    EmptyStreamError,
    ErrorCode,
    InternalError,
    InvalidRequestError,
    ServiceError,
    UnavailableError,
    UnknownOperationError,
    UnknownStreamError,
)
from repro.service.http import HttpFrontend, HttpTransport
from repro.service.server import StreamServer
from repro.service.session import Session, StreamHandle
from repro.service.types import (
    AppendResult,
    CheckpointResult,
    QueryResult,
    ServerInfo,
    StatsResult,
)

__all__ = [
    "AppendResult",
    "BadRequestError",
    "BinaryTransport",
    "CheckpointResult",
    "ClusterRouter",
    "EmptyStreamError",
    "ErrorCode",
    "HashRing",
    "HttpFrontend",
    "HttpTransport",
    "InternalError",
    "InvalidRequestError",
    "JsonTransport",
    "QueryResult",
    "Rebalancer",
    "ServerInfo",
    "ServiceClient",
    "ServiceError",
    "Session",
    "StatsResult",
    "StreamEngine",
    "StreamHandle",
    "StreamServer",
    "Transport",
    "UnavailableError",
    "UnknownOperationError",
    "UnknownStreamError",
]
