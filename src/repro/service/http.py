"""HTTP/1.1 REST facade over the streaming service (``docs/REST.md``).

A stdlib-only asyncio HTTP server mounted *beside* the TCP front: the
same :class:`~repro.service.StreamEngine` (or cluster
:class:`~repro.service.cluster.ClusterRouter` proxy) serves JSON-line,
binary-frame, and REST clients simultaneously, so histograms observed
over any transport are bit-identical.  No web framework is involved --
the request loop parses request lines, headers, and ``Content-Length``
bodies directly and keeps connections alive per HTTP/1.1 semantics.

Routes (``{tenant}`` of ``-`` addresses a bare stream id, so REST and
TCP clients can hit the same streams; otherwise the stream id is
``tenant/stream``)::

    POST /v1/streams/{tenant}/{stream}:append      JSON array/object or
                                                   application/octet-stream
                                                   raw LE float64 (zero-copy)
    POST /v1/streams/{tenant}/{stream}:checkpoint  snapshot one stream
    GET  /v1/streams/{tenant}/{stream}/histogram   ?drain=1 for a barrier
    GET  /v1/streams/{tenant}/{stream}/stats       per-stream counters
    GET  /v1/streams                               registered stream ids
    GET  /v1/stats                                 engine-wide statistics
    POST /v1/streams:checkpoint                    snapshot every stream
    POST /v1/streams:drain                         apply-all barrier
    GET  /v1/meta                                  capability matrix
    GET  /v1/ping                                  liveness
    GET  /v1/cluster                               ring + per-worker load
    POST /v1/cluster/rebalance                     one rebalance pass
    POST /v1/cluster/grow                          add workers live
    POST /v1/cluster/restart                       re-spawn one worker

Error responses are ``{"ok": false, "error": <code>, "message": ...}``
with the unified taxonomy of :mod:`repro.service.errors`; the HTTP
status is the fixed per-code mapping (``backpressure`` -> 429 with
``Retry-After``, ``unknown-stream``/``unknown-op`` -> 404, ...).

**Idempotency** (``docs/REST.md``): appends are *not* idempotent and
are never retried by the service.  A client that must retry can send an
``Idempotency-Key`` header -- the facade replays the recorded response
for a repeated ``(stream, key)`` pair (bounded LRU) instead of applying
the batch twice, answering with ``Idempotency-Replayed: true``.

The module also provides the client half: :class:`HttpTransport`
implements the :class:`~repro.service.client.Transport` protocol over
``http.client``, which is how ``ServiceClient.from_url("http://...")``
speaks REST through the same typed API as the socket transports.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import re
import threading
from collections import OrderedDict
from math import isfinite
from typing import Optional, Tuple
from urllib.parse import parse_qs, quote, unquote, urlencode

import numpy as np

from repro.service import wire
from repro.service.errors import (
    BadRequestError,
    ErrorCode,
    InvalidRequestError,
    UnknownOperationError,
    classify_exception,
    http_status,
    raise_for_error,
)
from repro.service.types import ServerInfo

#: Protocol number of the REST transport (1 = JSON lines, 2 = binary
#: frames; negotiated ``hello`` protocols stay TCP-only -- this number
#: identifies the transport family in ``ServerInfo``/``/v1/meta``).
PROTO_HTTP = 3

#: Cap on one request line or header line (headers are small; bodies
#: are read separately up to :data:`MAX_BODY_BYTES`).
MAX_HEADER_LINE = 64 * 1024

#: Cap on a request body -- the same bound as a binary wire frame.
MAX_BODY_BYTES = wire.MAX_PAYLOAD_BYTES

_SERVER_NAME = "repro-histogram"

_STREAM_CONFIG_KEYS = ("method", "buckets", "epsilon", "universe", "window", "backend")

#: Query-string config values arrive as strings; coerce per key.
_CONFIG_COERCE = {
    "method": str,
    "buckets": int,
    "epsilon": float,
    "universe": int,
    "window": int,
    "backend": str,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_SEG = r"[^/:]+"
_STREAM_RE = rf"/v1/streams/(?P<tenant>{_SEG})/(?P<stream>{_SEG})"


def _routes() -> list:
    compiled = []
    for method, pattern, name in (
        ("GET", r"/v1/meta", "_r_meta"),
        ("GET", r"/v1/ping", "_r_ping"),
        ("GET", r"/v1/streams", "_r_streams"),
        ("GET", r"/v1/stats", "_r_stats_all"),
        ("POST", r"/v1/streams:checkpoint", "_r_checkpoint_all"),
        ("POST", r"/v1/streams:drain", "_r_drain"),
        ("POST", _STREAM_RE + r":append", "_r_append"),
        ("POST", _STREAM_RE + r":checkpoint", "_r_checkpoint"),
        ("GET", _STREAM_RE + r"/histogram", "_r_histogram"),
        ("GET", _STREAM_RE + r"/stats", "_r_stats"),
        ("GET", r"/v1/cluster", "_r_cluster"),
        ("POST", r"/v1/cluster/rebalance", "_r_rebalance"),
        ("POST", r"/v1/cluster/grow", "_r_grow"),
        ("POST", r"/v1/cluster/restart", "_r_restart"),
    ):
        compiled.append((method, re.compile(f"^{pattern}$"), name))
    return compiled


ROUTES = _routes()


def _error_body(message: str, code: ErrorCode = ErrorCode.BAD_REQUEST) -> dict:
    """The uniform JSON error document (``docs/REST.md``)."""
    return {"ok": False, "error": str(code), "message": message}


def _stream_id(match: "re.Match") -> str:
    """The engine stream id addressed by a matched stream route.

    Tenant ``-`` is the "no tenant" marker: ``/v1/streams/-/sku-42``
    addresses the bare id ``sku-42`` (what TCP clients use), while any
    other tenant prefixes it (``acme/sku-42``).  Segments are
    percent-decoded after routing, so an encoded ``%2F`` stays inside
    its segment.
    """
    tenant = unquote(match.group("tenant"))
    stream = unquote(match.group("stream"))
    return stream if tenant == "-" else f"{tenant}/{stream}"


def stream_path(stream_id: str) -> str:
    """The REST path prefix addressing ``stream_id`` (client side)."""
    if "/" in stream_id:
        tenant, _, rest = stream_id.partition("/")
        return f"/v1/streams/{quote(tenant, safe='')}/{quote(rest, safe='')}"
    return f"/v1/streams/-/{quote(stream_id, safe='')}"


class _IdempotencyCache:
    """Bounded LRU of ``(stream, Idempotency-Key) -> response payload``."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict = OrderedDict()

    def get(self, key) -> Optional[dict]:
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                return None
            self._data[key] = value
            return value

    def put(self, key, value: dict) -> None:
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)


class HttpFrontend:
    """Serve one engine (or cluster proxy) over HTTP/1.1 REST.

    Parameters
    ----------
    engine:
        The :class:`~repro.service.StreamEngine` (or the cluster
        router's proxy engine) to expose; the frontend never closes it.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    cluster:
        The owning :class:`~repro.service.cluster.ClusterRouter`, when
        this frontend fronts a cluster; enables the ``/v1/cluster``
        routes (a single-process server answers them ``unknown-op``).
    executor_workers:
        Size of a dedicated thread pool for engine calls (``None`` uses
        the loop's default executor) -- same contract as
        :class:`~repro.service.StreamServer`.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cluster=None,
        executor_workers: Optional[int] = None,
        idempotency_capacity: int = 1024,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.cluster = cluster
        self.executor_workers = executor_workers
        self._idempotency = _IdempotencyCache(idempotency_capacity)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- lifecycle (mirrors StreamServer) -------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (on the running loop)."""
        self._loop = asyncio.get_running_loop()
        if self.executor_workers is not None:
            from concurrent.futures import ThreadPoolExecutor

            self._loop.set_default_executor(
                ThreadPoolExecutor(
                    max_workers=self.executor_workers,
                    thread_name_prefix="repro-http-io",
                )
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEADER_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`stop` or cancellation."""
        if self._server is None:
            await self.start()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    def run(self) -> None:
        """Blocking entry point (the CLI ``serve --http-port``)."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass

    def start_in_background(self) -> "HttpFrontend":
        """Run the frontend on a daemon thread; returns once it is bound."""
        self._thread = threading.Thread(
            target=self.run, name="repro-http-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("HTTP frontend failed to start within 10s")
        return self

    def stop(self) -> None:
        """Stop accepting connections and unwind the background thread."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None:
            loop.call_soon_threadsafe(server.close)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        """One client: HTTP/1.1 request/response with keep-alive."""
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._answer(
                        writer, 400, _error_body("request line too long"), False
                    )
                    return
                if not request_line:
                    return
                if request_line in (b"\r\n", b"\n"):
                    continue
                parts = request_line.split()
                if len(parts) != 3:
                    await self._answer(
                        writer, 400, _error_body("malformed request line"), False
                    )
                    return
                method = parts[0].decode("latin-1")
                target = parts[1].decode("latin-1")
                version = parts[2].decode("latin-1")
                try:
                    headers = await self._read_headers(reader)
                except (asyncio.LimitOverrunError, ValueError):
                    await self._answer(
                        writer, 400, _error_body("header line too long"), False
                    )
                    return
                if headers is None:
                    return  # EOF mid-headers
                if headers.get("transfer-encoding"):
                    await self._answer(
                        writer,
                        400,
                        _error_body(
                            "chunked request bodies are not supported; "
                            "send Content-Length"
                        ),
                        False,
                    )
                    return
                body = b""
                raw_length = headers.get("content-length")
                if raw_length is not None:
                    try:
                        length = int(raw_length)
                        if length < 0:
                            raise ValueError
                    except ValueError:
                        await self._answer(
                            writer, 400, _error_body("bad Content-Length"), False
                        )
                        return
                    if length > MAX_BODY_BYTES:
                        await self._answer(
                            writer,
                            413,
                            _error_body(
                                f"request body of {length} bytes exceeds "
                                f"the {MAX_BODY_BYTES}-byte cap"
                            ),
                            False,
                        )
                        return
                    try:
                        body = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        return
                status, payload, extra = await self._respond(
                    method, target, headers, body
                )
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                await self._answer(writer, status, payload, keep_alive, extra)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    @staticmethod
    async def _read_headers(reader) -> Optional[dict]:
        """Lower-cased header dict, or ``None`` on EOF mid-headers."""
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

    async def _answer(
        self,
        writer,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------------

    async def _respond(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple:
        """Route one request; returns ``(status, payload, extra_headers)``."""
        raw_path, _, query_string = target.partition("?")
        try:
            query = parse_qs(query_string)
        except ValueError:  # pragma: no cover - parse_qs is permissive
            query = {}
        allowed = set()
        for route_method, pattern, handler_name in ROUTES:
            match = pattern.match(raw_path)
            if match is None:
                continue
            if route_method != method:
                allowed.add(route_method)
                continue
            handler = getattr(self, handler_name)
            loop = asyncio.get_running_loop()
            try:
                payload, extra = await loop.run_in_executor(
                    None, handler, match, query, headers, body
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                code, message = classify_exception(exc)
                status = http_status(code)
                extra = (
                    (("Retry-After", "1"),)
                    if code == ErrorCode.BACKPRESSURE
                    else ()
                )
                return (
                    status,
                    {"ok": False, "error": str(code), "message": message},
                    extra,
                )
            return 200, {"ok": True, **payload}, tuple(extra)
        if allowed:
            return (
                405,
                _error_body(
                    f"method {method} not allowed for {raw_path} "
                    f"(allowed: {', '.join(sorted(allowed))})"
                ),
                (("Allow", ", ".join(sorted(allowed))),),
            )
        return (
            404,
            {
                "ok": False,
                "error": str(ErrorCode.UNKNOWN_OP),
                "message": f"no route {method} {raw_path}",
            },
            (),
        )

    # -- handlers (run on executor threads) --------------------------------------

    def _stream_for(self, stream_id: str, config: dict):
        """Create-or-fetch a stream, mirroring the TCP server's rule."""
        if not config and stream_id in self.engine.streams():
            return self.engine.handle(stream_id)
        return self.engine.stream(stream_id, **config)

    @staticmethod
    def _config_from_query(query: dict) -> dict:
        config = {}
        for key in _STREAM_CONFIG_KEYS:
            if key in query:
                raw = query[key][-1]
                try:
                    config[key] = _CONFIG_COERCE[key](raw)
                except ValueError:
                    raise InvalidRequestError(
                        f"query parameter {key}={raw!r} is not a valid "
                        f"{_CONFIG_COERCE[key].__name__}"
                    ) from None
        return config

    def _r_append(self, match, query, headers, body):
        stream_id = _stream_id(match)
        config = self._config_from_query(query)
        content_type = headers.get("content-type", "application/json")
        content_type = content_type.split(";")[0].strip().lower()
        if content_type == "application/octet-stream":
            # The zero-copy path: the body *is* the value region of a
            # binary append frame (raw LE float64), decoded by the same
            # wire helper -- numpy.frombuffer, no copy, no boxing.
            try:
                values = wire.decode_values(body)
            except wire.WireError as exc:
                raise BadRequestError(str(exc)) from exc
        elif content_type in ("application/json", "text/json", ""):
            values, config = self._parse_json_append(body, config)
        else:
            raise BadRequestError(
                f"unsupported Content-Type {content_type!r}; send "
                "application/json or application/octet-stream"
            )
        idempotency_key = headers.get("idempotency-key")
        if idempotency_key:
            cached = self._idempotency.get((stream_id, idempotency_key))
            if cached is not None:
                return cached, (("Idempotency-Replayed", "true"),)
        handle = self._stream_for(stream_id, config)
        accepted = handle.append(values)
        payload = {"stream": handle.stream_id, "accepted": accepted}
        if idempotency_key:
            self._idempotency.put((stream_id, idempotency_key), payload)
        return payload, ()

    @staticmethod
    def _parse_json_append(body: bytes, config: dict):
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequestError(
                f"append body is not valid JSON: {exc}"
            ) from exc
        if isinstance(document, list):
            values = document
        elif isinstance(document, dict):
            values = document.get("values", [])
            for key in _STREAM_CONFIG_KEYS:
                if document.get(key) is not None:
                    config = {**config, key: document[key]}
        else:
            raise BadRequestError(
                "append body must be a JSON array of values or an object "
                'with a "values" array'
            )
        if isinstance(values, (int, float)) and not isinstance(values, bool):
            values = [values]
        if not isinstance(values, list):
            raise BadRequestError('"values" must be a JSON array or a number')
        for value in values:
            if isinstance(value, float) and not isfinite(value):
                raise BadRequestError(
                    "append payload contains non-finite (NaN/inf) values"
                )
        return values, config

    def _r_histogram(self, match, query, headers, body):
        stream_id = _stream_id(match)
        if query.get("drain", ["0"])[-1].lower() in ("1", "true", "yes"):
            self.engine.drain()
        hist = self.engine.histogram(stream_id)
        return {"stream": stream_id, "histogram": hist.to_dict()}, ()

    def _r_stats(self, match, query, headers, body):
        stream_id = _stream_id(match)
        return {"stats": self.engine.stats(stream_id)}, ()

    def _r_stats_all(self, match, query, headers, body):
        return {"stats": self.engine.stats(None)}, ()

    def _r_checkpoint(self, match, query, headers, body):
        stream_id = _stream_id(match)
        generations = self.engine.checkpoint(stream_id)
        return {"generations": generations}, ()

    def _r_checkpoint_all(self, match, query, headers, body):
        return {"generations": self.engine.checkpoint(None)}, ()

    def _r_streams(self, match, query, headers, body):
        return {"streams": list(self.engine.streams())}, ()

    def _r_drain(self, match, query, headers, body):
        self.engine.drain()
        return {"drained": True}, ()

    def _r_ping(self, match, query, headers, body):
        return {"pong": True}, ()

    def _r_meta(self, match, query, headers, body):
        from repro import api

        return {
            "server": {
                "name": _SERVER_NAME,
                "wire_version": wire.WIRE_VERSION,
                "protocols": [PROTO_HTTP],
                "cluster": self.cluster is not None,
            },
            "methods": api.methods(),
            "endpoints": sorted(
                f"{method} {pattern.pattern[1:-1]}"
                for method, pattern, _ in ROUTES
            ),
        }, ()

    # -- cluster handlers --------------------------------------------------------

    def _require_cluster(self):
        if self.cluster is None:
            raise UnknownOperationError(
                "this server is not a cluster front; /v1/cluster routes "
                "are unavailable"
            )
        return self.cluster

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequestError(
                f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise BadRequestError("request body must be a JSON object")
        return document

    def _r_cluster(self, match, query, headers, body):
        return {"cluster": self._require_cluster().cluster_view()}, ()

    def _r_rebalance(self, match, query, headers, body):
        from repro.service.cluster.rebalance import Rebalancer

        cluster = self._require_cluster()
        document = self._json_body(body)
        try:
            max_moves = int(document.get("max_moves", 1))
        except (TypeError, ValueError):
            raise BadRequestError('"max_moves" must be an integer') from None
        moves = Rebalancer(cluster, max_moves=max_moves).rebalance_once()
        return {
            "moves": [move.to_dict() for move in moves],
        }, ()

    def _r_grow(self, match, query, headers, body):
        cluster = self._require_cluster()
        document = self._json_body(body)
        try:
            count = int(document.get("count", 1))
        except (TypeError, ValueError):
            raise BadRequestError('"count" must be an integer') from None
        return cluster.grow(count), ()

    def _r_restart(self, match, query, headers, body):
        cluster = self._require_cluster()
        document = self._json_body(body)
        worker = document.get("worker")
        if not worker:
            raise BadRequestError(
                'restart body must name the worker: {"worker": "w0"}'
            )
        return cluster.restart_worker(str(worker)), ()


# -- client transport ----------------------------------------------------------


class HttpTransport:
    """REST client half: the :class:`Transport` protocol over HTTP.

    One keep-alive ``http.client`` connection; each op maps to its REST
    route, and error responses raise the same typed exceptions as the
    socket transports (one taxonomy, whatever the wire).  Connection
    failures surface as ``ConnectionError``/``OSError`` exactly like the
    socket transports, so retry/reconnect logic is transport-agnostic.
    """

    proto = PROTO_HTTP

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        send_headers = {"Accept": "application/json"}
        if headers:
            send_headers.update(headers)
        self._conn.request(method, path, body=body, headers=send_headers)
        response = self._conn.getresponse()
        data = response.read()  # must drain for keep-alive reuse
        try:
            document = json.loads(data)
        except ValueError as exc:
            raise wire.WireError(
                f"non-JSON response (HTTP {response.status}) from "
                f"{method} {path}"
            ) from exc
        return raise_for_error(document)

    def call(self, request: dict) -> dict:
        """Map one request object onto its REST route; one round trip."""
        op = str(request.get("op"))
        stream = request.get("stream")
        if op == "query":
            path = f"{stream_path(str(stream))}/histogram"
            if request.get("drain"):
                path += "?drain=1"
            return self._request("GET", path)
        if op == "stats":
            if stream is None:
                return self._request("GET", "/v1/stats")
            return self._request("GET", f"{stream_path(str(stream))}/stats")
        if op == "checkpoint":
            if stream is None:
                return self._request("POST", "/v1/streams:checkpoint")
            return self._request(
                "POST", f"{stream_path(str(stream))}:checkpoint"
            )
        if op == "streams":
            return self._request("GET", "/v1/streams")
        if op == "ping":
            return self._request("GET", "/v1/ping")
        if op == "drain":
            return self._request("POST", "/v1/streams:drain")
        if op == "append":
            rest = {
                key: request[key]
                for key in _STREAM_CONFIG_KEYS
                if request.get(key) is not None
            }
            return self.append(
                str(stream), request.get("values", []), rest
            )
        raise UnknownOperationError(
            f"op {op!r} has no REST mapping (the HTTP transport speaks "
            "append/query/stats/checkpoint/streams/ping/drain)"
        )

    def append(self, stream: str, values, config: dict) -> dict:
        """Append as one ``application/octet-stream`` body (raw float64)."""
        arr = np.asarray(values)
        if arr.dtype != wire.VALUE_DTYPE or not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr, dtype=wire.VALUE_DTYPE)
        params = {
            key: config[key] for key in sorted(config) if config[key] is not None
        }
        path = f"{stream_path(stream)}:append"
        if params:
            path += f"?{urlencode(params)}"
        return self._request(
            "POST",
            path,
            body=memoryview(arr).cast("B"),
            headers={"Content-Type": "application/octet-stream"},
        )

    def close(self) -> None:
        """Close the connection."""
        self._conn.close()


def connect_http(
    host: str, port: int, timeout: float = 30.0
) -> tuple[HttpTransport, ServerInfo]:
    """Connect a REST transport and learn the server identity from
    ``/v1/meta`` (the plumbing behind ``ServiceClient.from_url``)."""
    transport = HttpTransport(host, port, timeout=timeout)
    try:
        meta = transport._request("GET", "/v1/meta")
    except BaseException:
        transport.close()
        raise
    server = meta.get("server", {})
    info = ServerInfo(
        proto=PROTO_HTTP,
        protocols=tuple(server.get("protocols", (PROTO_HTTP,))),
        server=server.get("name", _SERVER_NAME),
        wire_version=server.get("wire_version"),
        negotiated=False,
    )
    return transport, info
