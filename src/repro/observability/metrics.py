"""Zero-dependency runtime metrics: counters, gauges, latency recorders.

Every summary in this library can be constructed with ``metrics=True`` (or
a shared :class:`MetricsRegistry`) to expose its internal event rates --
inserts, merges, ladder promotions, batch flushes, window evictions -- and
an insert-latency profile.  The registry is deliberately tiny and has no
third-party dependencies, because it ships inside the library and runs in
the ingest hot path of production deployments.

Design notes
------------

* **Disabled is free.**  Instrumentation is opt-in; a summary built
  without ``metrics`` stores ``None`` and its hot path performs a single
  ``is None`` test (guarded by ``benchmarks/bench_observability_overhead``).
* **Latency is dogfooded.**  :class:`LatencyRecorder` summarizes the
  per-insert latency series with the repo's own
  :class:`~repro.core.min_merge.MinMergeHistogram` -- the L-infinity
  streaming histogram this library exists to provide -- so the full
  latency timeline is available in O(B) space with a guaranteed maximum
  error, and approximate quantiles fall out of the segment weights.
* **Snapshots are plain data.**  :meth:`MetricsRegistry.snapshot` returns
  nested dicts of numbers/lists only, safe for ``json.dumps`` (also
  available as :meth:`MetricsRegistry.to_json`).
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "LatencyRecorder",
    "MetricsRegistry",
]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) events."""
        self.value += n

    def reset(self) -> None:
        """Zero the count."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Point-in-time value, either set explicitly or read from a source.

    A *sourced* gauge carries a zero-argument callable (for example
    ``summary.memory_bytes``) that is evaluated lazily at snapshot time, so
    keeping the gauge current costs nothing on the hot path.
    """

    __slots__ = ("name", "_value", "source")

    def __init__(self, name: str, source: Optional[Callable[[], float]] = None):
        self.name = name
        self._value: float = 0.0
        self.source = source

    def set(self, value: float) -> None:
        """Store an explicit value (ignored while a source is bound)."""
        self._value = value

    @property
    def value(self) -> float:
        """Current reading: the source's value, or the last ``set``."""
        if self.source is not None:
            return self.source()
        return self._value

    def reset(self) -> None:
        """Zero the stored value (a bound source is left in place)."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class LatencyRecorder:
    """Streaming profile of an operation-latency series.

    Tracks count / total / min / max exactly, and keeps a piecewise-constant
    approximation of the *latency timeline* (latency vs. operation index)
    in a :class:`~repro.core.min_merge.MinMergeHistogram` with ``buckets``
    working buckets -- O(B) space with a guaranteed maximum (L-infinity)
    error, reported in the snapshot as ``timeline_max_error_us``.

    Approximate quantiles are derived from the timeline segments: each
    segment covers ``end - beg + 1`` operations at its representative
    latency, and the weighted order statistics of those representatives are
    within the timeline's maximum error of the true quantiles.

    Latencies are recorded in **seconds** and reported in microseconds.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_timeline")

    def __init__(self, name: str, *, buckets: int = 16):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        # Imported lazily: repro.core imports this module at load time.
        from repro.core.min_merge import MinMergeHistogram

        # The recorder's own summary is never instrumented (that way lies
        # infinite regress); "linear" FINDMIN keeps its footprint at the
        # bare 2B buckets with no heap.
        self._timeline = MinMergeHistogram(buckets=buckets, findmin="linear")

    def record(self, seconds: float) -> None:
        """Record one operation latency (in seconds)."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self._timeline.insert(seconds * 1e6)

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 before the first record)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def timeline_segments(self) -> list[tuple[int, int, float]]:
        """``(beg, end, representative_us)`` segments of the latency timeline."""
        if self.count == 0:
            return []
        return [
            (seg.beg, seg.end, seg.left)
            for seg in self._timeline.histogram().segments
        ]

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile latency in microseconds.

        Derived from the timeline segments' weighted representatives; the
        answer is within the timeline's maximum error of a true latency
        sample at that rank.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        weighted = sorted(
            (value, end - beg + 1)
            for beg, end, value in self.timeline_segments()
        )
        rank = q * self.count
        seen = 0
        for value, weight in weighted:
            seen += weight
            if seen >= rank:
                return value
        return weighted[-1][0]

    def reset(self) -> None:
        """Forget every recorded latency and start a fresh timeline."""
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        from repro.core.min_merge import MinMergeHistogram

        self._timeline = MinMergeHistogram(
            buckets=self._timeline.target_buckets, findmin="linear"
        )

    def snapshot(self) -> dict:
        """Plain-data summary of the recorded latencies (microseconds)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total_us": self.total * 1e6,
            "mean_us": self.mean * 1e6,
            "min_us": self.min * 1e6,
            "max_us": self.max * 1e6,
            "p50_us": self.quantile(0.50),
            "p90_us": self.quantile(0.90),
            "p99_us": self.quantile(0.99),
            "timeline": [list(seg) for seg in self.timeline_segments()],
            "timeline_max_error_us": self._timeline.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyRecorder({self.name}, n={self.count})"


class MetricsRegistry:
    """Named collection of counters, gauges, and latency recorders.

    All accessors are create-or-get: asking for an existing name returns
    the existing instrument, so several summaries can share one registry
    and their events aggregate (the :class:`~repro.fleet.StreamFleet`
    pattern).  Names must be unique across instrument kinds.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._latencies: dict[str, LatencyRecorder] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        existing = self._counters.get(name)
        if existing is None:
            self._check_free(name, self._counters)
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(
        self, name: str, *, source: Optional[Callable[[], float]] = None
    ) -> Gauge:
        """The gauge called ``name``, created on first use.

        Passing ``source`` (re)binds the gauge's lazy read callable --
        last binding wins, which lets a restored summary re-attach its
        gauges to the new object.
        """
        existing = self._gauges.get(name)
        if existing is None:
            self._check_free(name, self._gauges)
            existing = self._gauges[name] = Gauge(name, source)
        elif source is not None:
            existing.source = source
        return existing

    def latency(self, name: str, *, buckets: int = 16) -> LatencyRecorder:
        """The latency recorder called ``name``, created on first use."""
        existing = self._latencies.get(name)
        if existing is None:
            self._check_free(name, self._latencies)
            existing = self._latencies[name] = LatencyRecorder(
                name, buckets=buckets
            )
        return existing

    def _check_free(self, name: str, target: dict) -> None:
        for kind in (self._counters, self._gauges, self._latencies):
            if kind is not target and name in kind:
                raise InvalidParameterError(
                    f"metric name {name!r} already registered as a "
                    "different instrument kind"
                )

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every instrument, JSON-safe."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "latencies": {
                name: r.snapshot()
                for name, r in sorted(self._latencies.items())
            },
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """``snapshot()`` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for recorder in self._latencies.values():
            recorder.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._latencies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, latencies={len(self._latencies)})"
        )
