"""Lifecycle hooks connecting summaries to a :class:`MetricsRegistry`.

:class:`SummaryMetrics` is the facade each instrumented summary holds: a
small bundle of pre-resolved counters plus one latency recorder, with one
``on_*`` method per lifecycle event.  Event semantics, shared by every
algorithm family (documented in ``docs/OBSERVABILITY.md``):

``on_insert``
    A stream value was accepted (buffered values count on arrival).
``on_merge``
    Work was absorbed into an existing bucket instead of growing the
    summary: a MIN-MERGE adjacent-pair merge, or a GREEDY-INSERT value
    absorbed into the open bucket of the answer-level summary.
``on_promotion``
    A MIN-INCREMENT ladder level died (its summary outgrew ``B``), so
    the answer promoted to a coarser target error.
``on_flush``
    A batch buffer was drained (Section 2.2.2 fast path).
``on_evict``
    Summary state was dropped for reasons other than merging: a
    sliding-window bucket expired or was trimmed, or a fleet stream was
    removed.
``on_failure``
    A unit of work failed and was retried or rerouted: a parallel shard
    attempt whose worker died or raised (``repro.parallel.executor``).

Summaries store ``None`` when uninstrumented, so the disabled fast path
costs a single ``is None`` test; :func:`resolve_metrics` normalizes the
``metrics=`` constructor argument into that representation.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.exceptions import InvalidParameterError
from repro.observability.metrics import Counter, MetricsRegistry

__all__ = ["COUNTER_NAMES", "SummaryMetrics", "resolve_metrics"]

#: The lifecycle counters every :class:`SummaryMetrics` facade owns, in the
#: order they appear in :meth:`SummaryMetrics.counter_totals`.
COUNTER_NAMES = (
    "inserts",
    "merges",
    "promotions",
    "flushes",
    "evictions",
    "failures_retried",
    "query_cache_hits",
    "query_cache_misses",
)


class SummaryMetrics:
    """Per-summary instrumentation facade over a :class:`MetricsRegistry`.

    Parameters
    ----------
    registry:
        Registry to record into; a private one is created when omitted.
        Passing a shared registry aggregates events across summaries
        (counters with equal names are the same object).
    prefix:
        Optional name prefix (``"<prefix>inserts"`` etc.) for telling
        several summaries apart inside one registry.
    latency_buckets:
        Bucket budget of the insert-latency timeline histogram.
    """

    __slots__ = (
        "registry",
        "prefix",
        "inserts",
        "merges",
        "promotions",
        "flushes",
        "evictions",
        "failures_retried",
        "query_cache_hits",
        "query_cache_misses",
        "insert_latency",
    )

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        prefix: str = "",
        latency_buckets: int = 16,
    ):
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self.prefix = prefix
        self.inserts = registry.counter(prefix + "inserts")
        self.merges = registry.counter(prefix + "merges")
        self.promotions = registry.counter(prefix + "promotions")
        self.flushes = registry.counter(prefix + "flushes")
        self.evictions = registry.counter(prefix + "evictions")
        self.failures_retried = registry.counter(prefix + "failures_retried")
        self.query_cache_hits = registry.counter(prefix + "query_cache_hits")
        self.query_cache_misses = registry.counter(
            prefix + "query_cache_misses"
        )
        self.insert_latency = registry.latency(
            prefix + "insert_latency", buckets=latency_buckets
        )

    # -- lifecycle events --------------------------------------------------

    def on_insert(self, n: int = 1, *, latency: Optional[float] = None) -> None:
        """``n`` values accepted; ``latency`` is the insert's wall time (s)."""
        self.inserts.value += n
        if latency is not None:
            self.insert_latency.record(latency)

    def on_merge(self, n: int = 1) -> None:
        """``n`` merge events (pair merges / open-bucket absorptions)."""
        self.merges.value += n

    def on_promotion(self, n: int = 1) -> None:
        """``n`` ladder levels died; the answer moved to a coarser error."""
        self.promotions.value += n

    def on_flush(self, items: int = 0) -> None:
        """One batch-buffer flush covering ``items`` buffered values."""
        self.flushes.value += 1

    def on_evict(self, n: int = 1) -> None:
        """``n`` buckets/streams dropped by expiry, trimming, or removal."""
        self.evictions.value += n

    def on_failure(self, n: int = 1) -> None:
        """``n`` failed work attempts that were retried or rerouted."""
        self.failures_retried.value += n

    def on_query_cache(self, hit: bool, n: int = 1) -> None:
        """``n`` engine histogram queries served from (or filling) the
        epoch-keyed query cache (see ``StreamEngine.histogram``)."""
        if hit:
            self.query_cache_hits.value += n
        else:
            self.query_cache_misses.value += n

    # -- aggregation across shards / children ------------------------------

    def counter_totals(self) -> dict:
        """The lifecycle counter values as a plain dict.

        The shape :meth:`absorb_counters` accepts, so per-shard totals can
        cross a process boundary as JSON-safe data and be folded into a
        combined summary's facade.
        """
        return {name: getattr(self, name).value for name in COUNTER_NAMES}

    def absorb_counters(self, totals: Mapping[str, int]) -> None:
        """Add child/shard counter totals into this facade.

        Used by the aggregation merge functions and the parallel ingest
        executor: when summaries of stream segments are combined, their
        lifecycle counters sum (latency timelines stay process-local and
        are *not* merged).  Keys must name counters from
        :data:`COUNTER_NAMES`.
        """
        for name, value in totals.items():
            counter = getattr(self, name, None)
            if not isinstance(counter, Counter):
                raise InvalidParameterError(
                    f"unknown summary counter {name!r}; expected one of "
                    f"{', '.join(COUNTER_NAMES)}"
                )
            counter.incr(int(value))

    # -- gauge wiring ------------------------------------------------------

    def bind_gauges(self, summary) -> None:
        """Attach lazily-read gauges for the summary's current state.

        Binds whatever the summary exposes out of ``memory_bytes`` /
        ``bucket_count`` / ``alive_levels``; gauges are evaluated only at
        snapshot time, so this adds nothing to the ingest path.  Re-binding
        (for example after a checkpoint restore) replaces the sources.
        """
        memory = getattr(summary, "memory_bytes", None)
        if callable(memory):
            self.registry.gauge(self.prefix + "memory_bytes", source=memory)
        if hasattr(type(summary), "bucket_count"):
            self.registry.gauge(
                self.prefix + "bucket_count",
                source=lambda s=summary: s.bucket_count,
            )
        if hasattr(type(summary), "alive_levels"):
            self.registry.gauge(
                self.prefix + "alive_levels",
                source=lambda s=summary: len(s.alive_levels),
            )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data snapshot of the underlying registry."""
        return self.registry.snapshot()

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Registry snapshot as JSON."""
        return self.registry.to_json(indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SummaryMetrics(prefix={self.prefix!r}, {self.registry!r})"


def resolve_metrics(
    metrics: Union[None, bool, MetricsRegistry, SummaryMetrics],
    *,
    prefix: str = "",
) -> Optional[SummaryMetrics]:
    """Normalize a constructor ``metrics=`` argument.

    Accepts ``None``/``False`` (instrumentation off -- the result is
    ``None`` so hot paths can use a bare ``is None`` test), ``True`` (a
    private registry), a shared :class:`MetricsRegistry`, or an existing
    :class:`SummaryMetrics` facade.
    """
    if metrics is None or metrics is False:
        return None
    if metrics is True:
        return SummaryMetrics(prefix=prefix)
    if isinstance(metrics, MetricsRegistry):
        return SummaryMetrics(metrics, prefix=prefix)
    if isinstance(metrics, SummaryMetrics):
        return metrics
    raise InvalidParameterError(
        "metrics must be None, a bool, a MetricsRegistry, or a "
        f"SummaryMetrics, got {type(metrics).__name__}"
    )
