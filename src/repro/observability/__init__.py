"""Runtime telemetry for the streaming summaries (see docs/OBSERVABILITY.md).

Opt-in, zero-dependency instrumentation: construct any summary with
``metrics=True`` and read ``summary.metrics.snapshot()``::

    from repro import MinIncrementHistogram

    summary = MinIncrementHistogram(
        buckets=32, epsilon=0.2, universe=1 << 15, metrics=True
    )
    summary.extend(stream)
    print(summary.metrics.to_json(indent=2))

Summaries built without ``metrics`` pay a single ``is None`` test per
insert (guarded by ``benchmarks/bench_observability_overhead.py``).
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsRegistry,
)
from repro.observability.hooks import SummaryMetrics, resolve_metrics

__all__ = [
    "Counter",
    "Gauge",
    "LatencyRecorder",
    "MetricsRegistry",
    "SummaryMetrics",
    "resolve_metrics",
]
