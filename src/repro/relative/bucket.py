"""Buckets under the maximum relative error metric.

For non-negative values, representing the range ``[lo, hi]`` by a single
value ``v`` costs ``max((v - lo) / a, (hi - v) / b)`` where
``a = max(lo, c)`` and ``b = max(hi, c)`` are the sanity-bounded
denominators (only the extremes matter: ``|x - v| / max(x, c)`` is
monotone on either side of ``v``).  Equalizing the two terms gives the
closed forms

    v*  = (lo * b + hi * a) / (a + b)
    err = (hi - lo) / (a + b)

Both monotonicity properties the paper's proofs rely on hold:

* *extension*: pushing ``hi`` up (or ``lo`` down) strictly increases
  ``(hi - lo) / (a + b)`` -- the derivative of ``(h - lo) / (a + h)`` in
  ``h`` is ``(a + lo) / (a + h)^2 > 0`` (symmetrically for ``lo``);
* *union*: the union of two buckets extends both ends, so its error
  dominates each part's.

Hence GREEDY-INSERT is exactly optimal per target error (Lemma 2's proof
verbatim) and MIN-MERGE keeps the (1, 2) guarantee (Lemma 1's pigeonhole
only needs union-monotonicity).
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError


class RelativeBucket:
    """Bucket ``(beg, end, min, max)`` scored by maximum relative error."""

    __slots__ = ("beg", "end", "min", "max", "sanity")

    def __init__(self, beg: int, end: int, lo, hi, *, sanity: float = 1.0):
        if beg > end:
            raise InvalidParameterError(f"bucket range [{beg}, {end}] is empty")
        if lo > hi:
            raise InvalidParameterError(f"bucket min {lo} exceeds max {hi}")
        if lo < 0:
            raise InvalidParameterError(
                f"relative-error buckets need non-negative values, got {lo}"
            )
        if sanity <= 0:
            raise InvalidParameterError(f"sanity must be positive, got {sanity}")
        self.beg = beg
        self.end = end
        self.min = lo
        self.max = hi
        self.sanity = sanity

    @classmethod
    def singleton(cls, index: int, value, *, sanity: float = 1.0) -> "RelativeBucket":
        """Bucket holding exactly the stream item ``(index, value)``."""
        return cls(index, index, value, value, sanity=sanity)

    @property
    def count(self) -> int:
        """Number of stream items the bucket covers."""
        return self.end - self.beg + 1

    def _denominators(self) -> tuple[float, float]:
        c = self.sanity
        return (self.min if self.min > c else c), (self.max if self.max > c else c)

    @property
    def representative(self) -> float:
        """The relative-error-optimal single value."""
        a, b = self._denominators()
        return (self.min * b + self.max * a) / (a + b)

    @property
    def error(self) -> float:
        """Maximum relative error of the optimal representative."""
        a, b = self._denominators()
        return (self.max - self.min) / (a + b)

    def extend(self, value) -> None:
        """Absorb the next stream value (at index ``end + 1``) in place."""
        if value < 0:
            raise InvalidParameterError(
                f"relative-error buckets need non-negative values, got {value}"
            )
        self.end += 1
        if value < self.min:
            self.min = value
        elif value > self.max:
            self.max = value

    def would_extend_error(self, value) -> float:
        """Error after absorbing ``value``, without mutating."""
        lo = value if value < self.min else self.min
        hi = value if value > self.max else self.max
        c = self.sanity
        a = lo if lo > c else c
        b = hi if hi > c else c
        return (hi - lo) / (a + b)

    def merged_with(self, other: "RelativeBucket") -> "RelativeBucket":
        """Union of two adjacent buckets."""
        if other.beg != self.end + 1:
            raise InvalidParameterError(
                f"buckets [{self.beg},{self.end}] and "
                f"[{other.beg},{other.end}] are not adjacent"
            )
        return RelativeBucket(
            self.beg,
            other.end,
            min(self.min, other.min),
            max(self.max, other.max),
            sanity=self.sanity,
        )

    def merge_error_with(self, other: "RelativeBucket") -> float:
        """Error of the union bucket, without constructing it."""
        lo = self.min if self.min <= other.min else other.min
        hi = self.max if self.max >= other.max else other.max
        c = self.sanity
        a = lo if lo > c else c
        b = hi if hi > c else c
        return (hi - lo) / (a + b)

    def __repr__(self) -> str:
        return (
            f"RelativeBucket(beg={self.beg}, end={self.end}, "
            f"min={self.min}, max={self.max})"
        )


def relative_error_ladder(
    epsilon: float, universe: int, *, sanity: float = 1.0
) -> list[float]:
    """Geometric target ladder for relative errors.

    Relative bucket errors live in ``[0, 1)``; the smallest nonzero value
    on an integer domain ``[0, U)`` with sanity ``c`` is at least
    ``1 / (2U)``, so the ladder is ``{0} + {e_min (1+eps)^i}`` up to 1 --
    ``O(eps^-1 log U)`` levels, mirroring the absolute-error ladder.
    """
    if not 0 < epsilon < 1:
        raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
    if universe < 2:
        raise InvalidParameterError(f"universe must be at least 2, got {universe}")
    floor = 1.0 / (2.0 * max(universe, sanity * 2))
    levels = [0.0]
    e = floor
    while True:
        levels.append(e)
        if e >= 1.0:
            break
        e *= 1.0 + epsilon
    return levels


def min_relative_buckets_for_error(values, error: float, *, sanity: float = 1.0) -> int:
    """Minimum buckets covering ``values`` within relative ``error``.

    One greedy scan; exactly optimal by the Lemma 2 argument (the bucket
    error is monotone under extension).
    """
    if error < 0:
        raise InvalidParameterError(f"error must be >= 0, got {error}")
    if len(values) == 0:
        return 0
    count = 1
    bucket = RelativeBucket.singleton(0, values[0], sanity=sanity)
    for i in range(1, len(values)):
        v = values[i]
        if bucket.would_extend_error(v) <= error:
            bucket.extend(v)
        else:
            count += 1
            bucket = RelativeBucket.singleton(i, v, sanity=sanity)
    return count


def brute_force_min_relative_buckets(
    values, error: float, *, sanity: float = 1.0
) -> int:
    """Reference DP used by the tests (quadratic; tiny inputs only)."""
    n = len(values)
    if n == 0:
        return 0
    inf = math.inf
    best = [inf] * (n + 1)
    best[0] = 0
    for j in range(1, n + 1):
        lo = hi = values[j - 1]
        for i in range(j - 1, -1, -1):
            v = values[i]
            lo = v if v < lo else lo
            hi = v if v > hi else hi
            a = lo if lo > sanity else sanity
            b = hi if hi > sanity else sanity
            if (hi - lo) / (a + b) <= error:
                if best[i] + 1 < best[j]:
                    best[j] = best[i] + 1
            else:
                break
    return int(best[n])
