"""MIN-MERGE and MIN-INCREMENT under the maximum relative error.

The control flow is identical to the absolute-error versions in
:mod:`repro.core`; only the bucket arithmetic differs (see
:mod:`repro.relative.bucket` for why the guarantees transfer: both proofs
use nothing beyond monotonicity of the bucket error under extension and
union).  Guarantees:

* :class:`RelativeMinMergeHistogram` -- (1, 2): with 2B buckets, relative
  error at most the optimal B-bucket relative error, in O(B) memory;
* :class:`RelativeMinIncrementHistogram` -- (1 + eps, 1) down to the
  ladder floor ``1 / (2U)`` (relative errors are rationals, so exact
  small levels like the absolute ladder's 0/0.5 do not exist; below the
  floor the answer is the floor level -- same granularity caveat as the
  PWL ladder, DESIGN.md item 5);
* :func:`optimal_relative_error` -- exact offline optimum by bisection
  with greedy feasibility plus a realized-error snap.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional, Sequence

from repro.core.histogram import Histogram, Segment
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.relative.bucket import RelativeBucket, relative_error_ladder
from repro.structures.heap import AddressableMinHeap
from repro.structures.linked_list import BucketList, BucketNode


class RelativeMinMergeHistogram:
    """Streaming (1, 2)-approximate maximum-relative-error histogram.

    Parameters
    ----------
    buckets:
        Target bucket count ``B``; up to ``2 * B`` working buckets.
    working_buckets:
        Override for the working budget (defaults to ``2 * buckets``),
        mirroring the absolute-error merge family.
    sanity:
        The denominator floor ``c`` of the relative metric.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        buckets: int,
        *,
        working_buckets: Optional[int] = None,
        sanity: float = 1.0,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if working_buckets is None:
            working_buckets = 2 * buckets
        if working_buckets < 1:
            raise InvalidParameterError(
                f"working_buckets must be >= 1, got {working_buckets}"
            )
        self.target_buckets = buckets
        self.working_buckets = working_buckets
        self.sanity = sanity
        self._model = memory_model
        self._list = BucketList()
        self._heap = AddressableMinHeap()
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    def insert(self, value) -> None:
        """Process the next stream value."""
        if value < 0:
            raise DomainError(
                f"relative-error histograms need non-negative values, got {value}"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        node = self._list.append(
            RelativeBucket.singleton(self._n, value, sanity=self.sanity)
        )
        if node.prev is not None:
            self._push_pair_key(node.prev)
        if len(self._list) > self.working_buckets:
            self._merge_min_pair()
            if observe:
                self._metrics.on_merge()
        self._n += 1
        if observe:
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order."""
        for value in values:
            self.insert(value)

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def bucket_count(self) -> int:
        """Current number of working buckets."""
        return len(self._list)

    @property
    def error(self) -> float:
        """Current summary relative error (largest bucket error)."""
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        return max(node.bucket.error for node in self._list)

    def histogram(self) -> Histogram:
        """The current piecewise-constant approximation.

        The ``error`` field carries the maximum *relative* error.
        """
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        segments = [
            Segment(b.beg, b.end, b.representative, b.representative)
            for b in self._list.buckets()
        ]
        return Histogram(segments, self.error)

    def memory_bytes(self) -> int:
        """Accounted memory: buckets plus heap entries."""
        return self._model.buckets(len(self._list)) + self._model.heap_entries(
            len(self._heap)
        )

    def check_min_merge_property(self) -> None:
        """Assert merging any adjacent pair costs at least err(S) (tests)."""
        if len(self._list) < 2:
            return
        current = self.error
        for node in self._list:
            if node.next is None:
                continue
            if node.bucket.merge_error_with(node.next.bucket) < current - 1e-12:
                raise AssertionError(
                    "relative min-merge property violated at "
                    f"[{node.bucket.beg}, {node.next.bucket.end}]"
                )

    def _push_pair_key(self, left: BucketNode) -> None:
        key = left.bucket.merge_error_with(left.next.bucket)
        left.pair_handle = self._heap.push(key, left)

    def _drop_pair_key(self, left: BucketNode) -> None:
        if left.pair_handle is not None:
            self._heap.remove(left.pair_handle)
            left.pair_handle = None

    def _merge_min_pair(self) -> None:
        _key, left = self._heap.pop_min()
        left.pair_handle = None
        right = left.next
        self._drop_pair_key(right)
        if left.prev is not None:
            self._drop_pair_key(left.prev)
        left.bucket = left.bucket.merged_with(right.bucket)
        self._list.remove(right)
        if left.prev is not None:
            self._push_pair_key(left.prev)
        if left.next is not None:
            self._push_pair_key(left)


class _RelativeGreedySummary:
    """GREEDY-INSERT for one relative target error."""

    __slots__ = ("target_error", "sanity", "closed", "open", "_next_index")

    def __init__(self, target_error: float, sanity: float):
        self.target_error = target_error
        self.sanity = sanity
        self.closed: list[RelativeBucket] = []
        self.open: Optional[RelativeBucket] = None
        self._next_index = 0

    def insert(self, value) -> None:
        if self.open is None:
            self.open = RelativeBucket.singleton(
                self._next_index, value, sanity=self.sanity
            )
        elif self.open.would_extend_error(value) <= self.target_error:
            self.open.extend(value)
        else:
            self.closed.append(self.open)
            self.open = RelativeBucket.singleton(
                self._next_index, value, sanity=self.sanity
            )
        self._next_index += 1

    @property
    def bucket_count(self) -> int:
        return len(self.closed) + (1 if self.open is not None else 0)

    def buckets(self) -> list[RelativeBucket]:
        out = list(self.closed)
        if self.open is not None:
            out.append(self.open)
        return out


class RelativeMinIncrementHistogram:
    """Streaming (1 + eps, 1)-approximate relative-error histogram.

    Parameters
    ----------
    buckets, epsilon, universe:
        As in :class:`~repro.core.min_increment.MinIncrementHistogram`.
    sanity:
        Denominator floor ``c`` of the relative metric.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        *,
        sanity: float = 1.0,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        self.target_buckets = buckets
        self.universe = universe
        self.epsilon = epsilon
        self.sanity = sanity
        self._model = memory_model
        self._levels = relative_error_ladder(epsilon, universe, sanity=sanity)
        self._summaries = [
            _RelativeGreedySummary(level, sanity) for level in self._levels
        ]
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    def insert(self, value) -> None:
        """Process the next stream value."""
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        best = self._summaries[0]
        best_buckets = best.bucket_count if observe else 0
        self._n += 1
        limit = self.target_buckets
        survivors = []
        dead = 0
        for summary in self._summaries:
            summary.insert(value)
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
            else:
                dead += 1
        self._summaries = survivors
        if observe:
            if dead:
                self._metrics.on_promotion(dead)
            if survivors[0] is best and best.bucket_count == best_buckets:
                self._metrics.on_merge()
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order."""
        for value in values:
            self.insert(value)

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def alive_levels(self) -> list[float]:
        """Target errors whose summaries still fit in ``B`` buckets."""
        return [s.target_error for s in self._summaries]

    @property
    def error(self) -> float:
        """Relative error of the answer histogram."""
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        best = self._summaries[0]
        return max((b.error for b in best.buckets()), default=0.0)

    def histogram(self) -> Histogram:
        """The (1 + eps, 1)-approximate relative-error histogram."""
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        best = self._summaries[0]
        segments = [
            Segment(b.beg, b.end, b.representative, b.representative)
            for b in best.buckets()
        ]
        return Histogram(segments, self.error)

    def memory_bytes(self) -> int:
        """Accounted memory: per-level buckets plus ladder entries."""
        total = self._model.ladder_entries(len(self._summaries))
        for summary in self._summaries:
            total += self._model.buckets(len(summary.closed))
            if summary.open is not None:
                total += self._model.open_buckets(1)
        return total


def optimal_relative_error(
    values: Sequence, buckets: int, *, sanity: float = 1.0
) -> float:
    """Exact optimal B-bucket maximum relative error (offline).

    Bisection over [0, 1) with greedy feasibility; the feasibility
    predicate steps only at achievable errors (rationals of the form
    ``(hi - lo) / (a + b)``), so once the bracket is below the candidate
    spacing the realized greedy error at the feasible end is the optimum.
    """
    if buckets < 1:
        raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
    if len(values) == 0:
        raise InvalidParameterError("cannot build a histogram of no values")
    from repro.relative.bucket import min_relative_buckets_for_error

    if min_relative_buckets_for_error(values, 0.0, sanity=sanity) <= buckets:
        return 0.0
    lo, hi = 0.0, 1.0
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if mid == lo or mid == hi:
            break
        if min_relative_buckets_for_error(values, mid, sanity=sanity) <= buckets:
            hi = mid
        else:
            lo = mid
    # Snap to the realized greedy error at the feasible end.
    worst = 0.0
    bucket = RelativeBucket.singleton(0, values[0], sanity=sanity)
    for i in range(1, len(values)):
        v = values[i]
        if bucket.would_extend_error(v) <= hi:
            bucket.extend(v)
        else:
            worst = max(worst, bucket.error)
            bucket = RelativeBucket.singleton(i, v, sanity=sanity)
    return max(worst, bucket.error)
