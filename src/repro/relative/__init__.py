"""Relative-error histograms (REHIST's native metric).

The paper benchmarks against REHIST [12], whose original objective is the
maximum *relative* error

    E_rel = max_i |x_i - xhat_i| / max(|x_i|, c)

with a sanity constant ``c`` guarding small denominators; Section 5 notes
the algorithm "works for the maximum error as well, with the same bounds".
This subpackage closes the loop in the other direction: the paper's own
MIN-MERGE and MIN-INCREMENT machinery works *verbatim* for the relative
metric, because a bucket's optimal relative error

    err([lo, hi]) = (hi - lo) / (max(lo, c) + max(hi, c))

is monotone under extension and under union -- the only two properties the
(1, 2) pigeonhole argument (Lemma 1) and the greedy dual optimality
(Lemma 2) actually use.  See :mod:`repro.relative.bucket` for the closed
forms.
"""

from repro.relative.bucket import RelativeBucket, relative_error_ladder
from repro.relative.algorithms import (
    RelativeMinIncrementHistogram,
    RelativeMinMergeHistogram,
    optimal_relative_error,
)

__all__ = [
    "RelativeBucket",
    "relative_error_ladder",
    "RelativeMinIncrementHistogram",
    "RelativeMinMergeHistogram",
    "optimal_relative_error",
]
