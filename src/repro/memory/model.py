"""Memory cost model for the histogram summaries.

The paper reports *observed space usage in bytes* for C++ implementations
whose structures are built from 4-byte integers (Section 5.1).  Measuring
CPython object sizes with ``sys.getsizeof`` would report interpreter box
overhead, not algorithmic space, so every summary in this library instead
exposes ``memory_bytes()`` computed from an explicit inventory of the words
it stores.  This module centralizes the per-structure word costs so that the
accounting is consistent across algorithms and easy to audit:

* serial bucket: 4 words (``beg``, ``end``, ``min``, ``max``) -- Section 2.1.1,
* heap entry: 2 words (key, bucket reference) -- the FINDMIN heap of
  MIN-MERGE,
* ladder entry: 1 word (the target error) -- MIN-INCREMENT's error ladder,
* open-bucket state: 3 words (``beg``, ``min``, ``max``) -- GREEDY-INSERT,
* hull vertex: 2 words (x, y) -- PWL buckets,
* PWL bucket header: 2 words (``beg``, ``end``),
* DP breakpoint: 4 words (position, error, running min, running max) --
  the REHIST baseline,
* record-stack entry: 2 words (position, value) -- suffix min/max stacks.

A :class:`MemoryModel` instance carries the word size; the default of 4
bytes mirrors the paper's 32-bit integers.  Structures whose natural values
exceed 32 bits on huge streams would need 8-byte words -- construct a model
with ``bytes_per_word=8`` to account for that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError

#: Word size (bytes) matching the paper's C++ ``int``.
BYTES_PER_WORD = 4

#: Words stored per serial-histogram bucket: beg, end, min, max.
WORDS_PER_BUCKET = 4

#: Words stored per addressable-heap entry: merge-error key + bucket id.
WORDS_PER_HEAP_ENTRY = 2

#: Words per MIN-INCREMENT ladder entry (the target error itself).
WORDS_PER_LADDER_ENTRY = 1

#: Words for one GREEDY-INSERT open bucket: beg, running min, running max.
WORDS_PER_OPEN_BUCKET = 3

#: Words per convex-hull vertex: x (stream index) and y (value).
WORDS_PER_HULL_VERTEX = 2

#: Words per PWL bucket header (beg, end); the hull is charged separately.
WORDS_PER_PWL_HEADER = 2

#: Words per REHIST breakpoint: position, error class value, suffix min, max.
WORDS_PER_BREAKPOINT = 4

#: Words per monotone record-stack entry: position and value.
WORDS_PER_STACK_ENTRY = 2


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of a summary's memory by structure.

    ``components`` maps a human-readable structure name (for example
    ``"buckets"`` or ``"heap"``) to its size in bytes; ``total_bytes`` is
    their sum.  Reports support ``+`` so multi-part summaries (for example
    MIN-INCREMENT, which owns many GREEDY-INSERT summaries) can aggregate
    their parts.
    """

    components: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Total accounted bytes across all components."""
        return sum(self.components.values())

    def __add__(self, other: "MemoryReport") -> "MemoryReport":
        merged = dict(self.components)
        for name, size in other.components.items():
            merged[name] = merged.get(name, 0) + size
        return MemoryReport(merged)

    def __radd__(self, other) -> "MemoryReport":
        # Support sum() over reports, whose start value is the int 0.
        if other == 0:
            return self
        return NotImplemented


class MemoryModel:
    """Translates structure counts into bytes under a fixed word size."""

    def __init__(self, bytes_per_word: int = BYTES_PER_WORD):
        if bytes_per_word <= 0:
            raise InvalidParameterError(
                f"bytes_per_word must be positive, got {bytes_per_word}"
            )
        self.bytes_per_word = bytes_per_word

    def words(self, count: int) -> int:
        """Bytes occupied by ``count`` words."""
        return count * self.bytes_per_word

    def buckets(self, count: int) -> int:
        """Bytes for ``count`` serial-histogram buckets."""
        return self.words(count * WORDS_PER_BUCKET)

    def heap_entries(self, count: int) -> int:
        """Bytes for ``count`` addressable-heap entries."""
        return self.words(count * WORDS_PER_HEAP_ENTRY)

    def ladder_entries(self, count: int) -> int:
        """Bytes for ``count`` target-error ladder entries."""
        return self.words(count * WORDS_PER_LADDER_ENTRY)

    def open_buckets(self, count: int) -> int:
        """Bytes for ``count`` GREEDY-INSERT open-bucket states."""
        return self.words(count * WORDS_PER_OPEN_BUCKET)

    def hull_vertices(self, count: int) -> int:
        """Bytes for ``count`` convex-hull vertices."""
        return self.words(count * WORDS_PER_HULL_VERTEX)

    def pwl_headers(self, count: int) -> int:
        """Bytes for ``count`` PWL bucket headers."""
        return self.words(count * WORDS_PER_PWL_HEADER)

    def breakpoints(self, count: int) -> int:
        """Bytes for ``count`` REHIST DP breakpoints."""
        return self.words(count * WORDS_PER_BREAKPOINT)

    def stack_entries(self, count: int) -> int:
        """Bytes for ``count`` monotone record-stack entries."""
        return self.words(count * WORDS_PER_STACK_ENTRY)


#: Shared default model (4-byte words, as in the paper).
DEFAULT_MODEL = MemoryModel()
