"""Explicit memory cost model used to reproduce the paper's byte counts."""

from repro.memory.model import (
    BYTES_PER_WORD,
    MemoryModel,
    MemoryReport,
    DEFAULT_MODEL,
)

__all__ = ["BYTES_PER_WORD", "MemoryModel", "MemoryReport", "DEFAULT_MODEL"]
