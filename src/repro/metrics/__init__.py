"""Error metrics between streams and their reconstructions."""

from repro.metrics.errors import (
    l2_error,
    linf_error,
    mean_absolute_error,
    series_linf_distance,
)

__all__ = [
    "l2_error",
    "linf_error",
    "mean_absolute_error",
    "series_linf_distance",
]
