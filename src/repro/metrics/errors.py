"""Reconstruction error metrics (equation 1 and friends).

The paper's metric of record is the maximum error
``E_inf = max_i |x_i - xhat_i|`` (equation 1); L2 and mean-absolute errors
are provided for the wavelet comparison and general reporting.  The module
also implements the StatStream-style *series distance* from the paper's
introduction: the L-infinity distance between two time series estimated
from their histogram summaries.
"""

from __future__ import annotations

from typing import Sequence

import math

from repro.core.histogram import Histogram
from repro.exceptions import InvalidParameterError


def _check_lengths(a: Sequence, b: Sequence) -> None:
    if len(a) != len(b):
        raise InvalidParameterError(
            f"length mismatch: {len(a)} vs {len(b)}"
        )
    if len(a) == 0:
        raise InvalidParameterError("cannot compare empty sequences")


def linf_error(values: Sequence, estimate: Sequence) -> float:
    """Maximum absolute deviation (the paper's equation 1)."""
    _check_lengths(values, estimate)
    return max(abs(v - e) for v, e in zip(values, estimate))


def l2_error(values: Sequence, estimate: Sequence) -> float:
    """Euclidean (root-sum-square) deviation."""
    _check_lengths(values, estimate)
    return math.sqrt(sum((v - e) ** 2 for v, e in zip(values, estimate)))


def mean_absolute_error(values: Sequence, estimate: Sequence) -> float:
    """Mean absolute deviation."""
    _check_lengths(values, estimate)
    return sum(abs(v - e) for v, e in zip(values, estimate)) / len(values)


def series_linf_distance(first: Histogram, second: Histogram) -> tuple[float, float]:
    """Bounds on ``max_i |x_i - y_i|`` of two series from their histograms.

    This is the similarity primitive from the paper's StatStream
    motivation: given histograms of two equal-range series with errors
    ``e1`` and ``e2``, the true L-infinity distance ``d`` satisfies

        max(0, dhat - e1 - e2)  <=  d  <=  dhat + e1 + e2,

    where ``dhat`` is the distance between the reconstructions.  Returns
    the ``(lower, upper)`` bounds.
    """
    if (first.beg, first.end) != (second.beg, second.end):
        raise InvalidParameterError(
            "histograms cover different index ranges: "
            f"[{first.beg}, {first.end}] vs [{second.beg}, {second.end}]"
        )
    # Evaluate the reconstruction gap only at segment boundaries of both
    # histograms: between consecutive boundaries both reconstructions are
    # linear, so their difference is linear and extremal at endpoints.
    marks = sorted(
        {first.beg}
        | {seg.beg for seg in first} | {seg.end for seg in first}
        | {seg.beg for seg in second} | {seg.end for seg in second}
    )
    dhat = max(abs(first.value_at(i) - second.value_at(i)) for i in marks)
    slack = first.error + second.error
    return max(0.0, dhat - slack), dhat + slack
