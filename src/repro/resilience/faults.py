"""Deterministic fault injection for crash and worker-failure testing.

A :class:`FaultPlan` is a countdown table over *named fault points*: the
checkpoint store, journal, and parallel executor consult the plan at each
point and raise :class:`~repro.exceptions.InjectedFaultError` while the
point's budget lasts.  No plan (the production default) means no checks at
all, so the hooks cost one ``is None`` test.

Fault points are consulted in a fixed order by deterministic code, so a
given (plan, workload) pair always crashes at the same instruction -- the
property suite in ``tests/test_resilience.py`` relies on this to enumerate
every crash point exhaustively.

The named points (see ``docs/RESILIENCE.md`` for where each one sits in
the write protocol):

==========================  ====================================================
point                       fires
==========================  ====================================================
``snapshot.tmp-write``      mid-write of the temp file (torn temp left behind)
``snapshot.fsync``          after the temp is written, before its fsync
``snapshot.rename``         after fsync, before the atomic rename
``snapshot.commit``         after the rename, before the directory fsync
``snapshot.prune``          after deleting one stale generation
``journal.append``          mid-append (torn record at the journal tail)
``journal.fsync``           after the record is written, before its fsync
``shard:<i>``               shard ``i``'s execution raises (poisoned worker)
``shard.kill:<i>``          shard ``i``'s process dies via ``os._exit``
==========================  ====================================================

Torn-write and bit-flip *corruption* injectors round out the toolkit for
testing snapshot validation without a plan in the write path.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Union

from repro.exceptions import InjectedFaultError, InvalidParameterError

#: Fault points with a fixed name (the shard points are parameterized).
CHECKPOINT_FAULT_POINTS = (
    "snapshot.tmp-write",
    "snapshot.fsync",
    "snapshot.rename",
    "snapshot.commit",
    "snapshot.prune",
    "journal.append",
    "journal.fsync",
)


class FaultPlan:
    """Countdown table mapping fault-point names to remaining failures.

    Parameters
    ----------
    failures:
        Either a mapping ``{point_name: budget}`` or an iterable of point
        names (each failing once, starting at its first occurrence).  A
        budget is an int ``count`` (fail the next ``count`` occurrences)
        or a pair ``(skip, count)`` (let ``skip`` occurrences pass first
        -- e.g. ``("snapshot.rename", (1, 1))`` survives the first
        checkpoint and crashes the second).  Counts must be positive.

    Examples
    --------
    >>> plan = FaultPlan({"snapshot.rename": 1})
    >>> plan.take("snapshot.rename")  # consumed
    True
    >>> plan.take("snapshot.rename")  # budget exhausted
    False
    """

    def __init__(
        self, failures: Union[Mapping[str, object], Iterable[str]] = ()
    ) -> None:
        table: dict[str, list[int]] = {}
        if isinstance(failures, Mapping):
            for name, budget in failures.items():
                if isinstance(budget, (tuple, list)):
                    skip, count = budget
                else:
                    skip, count = 0, budget
                table[str(name)] = [int(skip), int(count)]
        else:
            for name in failures:
                entry = table.setdefault(str(name), [0, 0])
                entry[1] += 1
        for name, (skip, count) in table.items():
            if count < 1 or skip < 0:
                raise InvalidParameterError(
                    f"fault budget for {name!r} must have count >= 1 and "
                    f"skip >= 0, got skip={skip}, count={count}"
                )
        self._budgets = table
        #: Names of the faults fired so far, in order (for test assertions).
        self.fired: list[str] = []

    @classmethod
    def crash_once(cls, *points: str) -> "FaultPlan":
        """A plan that fails each of ``points`` exactly once."""
        return cls(points)

    @classmethod
    def crash_at(cls, point: str, occurrence: int = 1) -> "FaultPlan":
        """Fail the ``occurrence``-th pass through ``point`` (1-based)."""
        if occurrence < 1:
            raise InvalidParameterError(
                f"occurrence must be >= 1, got {occurrence}"
            )
        return cls({point: (occurrence - 1, 1)})

    def remaining(self, point: str) -> int:
        """Failures left at ``point`` (not counting skipped occurrences)."""
        entry = self._budgets.get(point)
        return entry[1] if entry else 0

    def take(self, point: str) -> bool:
        """Consume one occurrence of ``point``; True when it should fail."""
        entry = self._budgets.get(point)
        if entry is None or entry[1] <= 0:
            return False
        if entry[0] > 0:
            entry[0] -= 1
            return False
        entry[1] -= 1
        self.fired.append(point)
        return True

    def fire(self, point: str) -> None:
        """Raise :class:`InjectedFaultError` if ``point`` has budget left."""
        if self.take(point):
            raise InjectedFaultError(f"injected fault at {point!r}")

    def __repr__(self) -> str:
        live = {k: tuple(v) for k, v in self._budgets.items() if v[1] > 0}
        return f"FaultPlan({live!r}, fired={len(self.fired)})"


def fire(plan, point: str) -> None:
    """Module-level convenience: ``plan.fire(point)`` tolerating ``None``."""
    if plan is not None:
        plan.fire(point)


# -- corruption injectors -----------------------------------------------------


def inject_torn_write(path, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a prefix, simulating a write torn by power loss.

    Returns the number of bytes kept.  ``keep_fraction`` of the current
    size is retained (rounded down), so ``0.0`` empties the file.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise InvalidParameterError(
            f"keep_fraction must lie in [0, 1), got {keep_fraction}"
        )
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def inject_bit_flip(path, offset: int = -1, bit: int = 0) -> int:
    """Flip one bit of a file in place, simulating silent media corruption.

    ``offset`` indexes the byte to corrupt (negative offsets count from the
    end, Python-style); ``bit`` in ``[0, 8)`` selects the bit.  Returns the
    absolute byte offset that was flipped.
    """
    if not 0 <= bit < 8:
        raise InvalidParameterError(f"bit must lie in [0, 8), got {bit}")
    size = os.path.getsize(path)
    if size == 0:
        raise InvalidParameterError(f"cannot bit-flip empty file {path!r}")
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise InvalidParameterError(
            f"offset {offset} out of range for {size}-byte file"
        )
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))
    return offset
