"""Crash consistency and fault injection for streaming summaries.

The resilience layer makes the paper's unattended deployment scenarios
(sensor nodes, long-lived window monitors) survivable:

* :class:`CheckpointStore` -- atomic snapshot rotation with versioned,
  checksummed envelopes, corrupt-generation fallback, and an optional
  append-only :class:`ItemJournal` so ``recover()`` is bit-identical to an
  uninterrupted run;
* :class:`FaultPlan` plus the :func:`inject_torn_write` /
  :func:`inject_bit_flip` corruption injectors -- a deterministic harness
  the test suite uses to crash every named point in the write protocol
  (and to kill or poison parallel shard workers).

See ``docs/RESILIENCE.md`` for the snapshot format, the journal replay
semantics, and the full fault-point catalogue.
"""

from repro.resilience.faults import (
    CHECKPOINT_FAULT_POINTS,
    FaultPlan,
    inject_bit_flip,
    inject_torn_write,
)
from repro.resilience.journal import ItemJournal
from repro.resilience.store import (
    SNAPSHOT_VERSION,
    CheckpointStore,
    RecoveryReport,
)

__all__ = [
    "CHECKPOINT_FAULT_POINTS",
    "SNAPSHOT_VERSION",
    "CheckpointStore",
    "FaultPlan",
    "ItemJournal",
    "RecoveryReport",
    "inject_bit_flip",
    "inject_torn_write",
]
