"""Crash-consistent checkpoint store: atomic snapshots + journal replay.

:class:`CheckpointStore` persists :func:`repro.checkpoint.state_dict`
payloads to a directory with the classic crash-consistency protocol:

1. **Atomic rotation** -- each snapshot is written to a temp file, flushed
   and fsynced, then renamed over ``snapshot-<generation>.json`` (rename is
   atomic on POSIX), and the directory is fsynced so the new name is
   durable.  A crash at *any* instruction leaves either the previous
   generations intact or the new one fully written -- never a half state.
2. **Versioned envelopes with checksums** -- the file carries a format
   marker, version, generation, the summary's ``items_seen``, and a CRC-32
   of the canonical state JSON.  Torn files fail to parse; bit flips fail
   the checksum; either way :meth:`CheckpointStore.load` skips the bad
   generation and **falls back to the previous good one**.
3. **Item journal** (optional, on by default) -- :meth:`CheckpointStore.ingest`
   appends each batch to an append-only journal *before* feeding the
   summary, so :meth:`CheckpointStore.recover` = newest good snapshot +
   replay of the journal tail reproduces the uninterrupted run bit for bit.
   After each snapshot the journal is compacted down to the tail still
   needed by the *oldest retained* generation.

Fault injection: pass a :class:`~repro.resilience.FaultPlan` and every
named ``snapshot.*`` / ``journal.*`` point in the protocol will consult it
(production stores pass nothing and skip all checks).
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.checkpoint import restore, state_dict
from repro.exceptions import (
    CheckpointCorruptionError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.resilience.faults import fire
from repro.resilience.journal import ItemJournal

SNAPSHOT_VERSION = 1
_FORMAT = "repro-checkpoint"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.json$")


def _canonical(state: dict) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def _state_crc(state: dict) -> int:
    return zlib.crc32(_canonical(state).encode("ascii"))


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`CheckpointStore.recover` actually did (CLI / tests)."""

    generation: Optional[int]  # snapshot generation used, None = fresh start
    snapshot_items: int  # items_seen at the loaded snapshot
    journal_records: int  # journal records inspected during replay
    replayed_items: int  # items fed to the summary from the journal
    skipped_generations: int  # newer generations rejected as corrupt


class CheckpointStore:
    """Durable snapshots (+ optional journal) for one summary's lifetime.

    Parameters
    ----------
    directory:
        Where snapshots (and the journal) live; created if missing.
    keep:
        Number of snapshot generations to retain (>= 1).  More generations
        tolerate more consecutive corrupt snapshots at proportionally more
        disk.
    journal:
        ``True`` journals every :meth:`ingest` batch; ``False`` disables
        journaling (recover then restarts from the snapshot alone);
        ``"auto"`` (default) journals iff a journal file already exists --
        the right mode for read-side tools like the CLI ``recover``
        subcommand.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` consulted at each
        named fault point (tests only).
    """

    def __init__(
        self,
        directory,
        *,
        keep: int = 2,
        journal="auto",
        fault_plan=None,
    ) -> None:
        if keep < 1:
            raise InvalidParameterError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        self.fault_plan = fault_plan
        os.makedirs(self.directory, exist_ok=True)
        journal_path = os.path.join(self.directory, "journal.log")
        if journal == "auto":
            journal = os.path.exists(journal_path)
        self._journal = (
            ItemJournal(journal_path, fault_plan=fault_plan) if journal else None
        )
        self.last_recovery: Optional[RecoveryReport] = None

    @property
    def journal(self) -> Optional[ItemJournal]:
        """The item journal, or ``None`` when journaling is off."""
        return self._journal

    # -- write side -----------------------------------------------------------

    def ingest(self, summary, values: Sequence, *, sync: bool = True) -> None:
        """Journal a batch, then feed it to the summary.

        With ``sync=True`` (the default) the journal append is durable
        (fsynced) before the summary sees a single value, so a crash
        anywhere leaves the journal covering at least everything the
        summary ingested.  ``sync=False`` defers the fsync to the next
        :meth:`sync` / ``sync=True`` boundary (the engine's group commit
        on queue-drain edges); :meth:`save` always syncs first, so a
        visible snapshot never covers more than the durable journal.
        With journaling off this is just ``summary.extend``.

        ``values`` passes through to ``summary.extend`` unchanged when it
        is sized (the zero-copy contract of the binary ingest path: an
        ndarray reaches the vectorized kernels without conversion).
        """
        if not hasattr(values, "__len__"):
            values = list(values)
        if self._journal is not None:
            self._journal.append(values, start=summary.items_seen, sync=sync)
        summary.extend(values)

    def sync(self) -> None:
        """Durably commit any deferred journal appends."""
        if self._journal is not None:
            self._journal.sync()

    def close(self) -> None:
        """Sync the journal and release its file handle."""
        if self._journal is not None:
            self._journal.close()

    def save(self, summary) -> int:
        """Write one snapshot generation atomically; returns its number.

        Protocol (fault points in parentheses): write temp
        (``snapshot.tmp-write``), fsync temp (``snapshot.fsync``), rename
        (``snapshot.rename``), fsync directory (``snapshot.commit``),
        prune stale generations (``snapshot.prune``) and compact the
        journal.  Any deferred journal appends are synced *first*: a
        snapshot must never become visible covering items the journal
        has not durably recorded.
        """
        plan = self.fault_plan
        if self._journal is not None:
            self._journal.sync()
        state = state_dict(summary)
        envelope = {
            "format": _FORMAT,
            "version": SNAPSHOT_VERSION,
            "generation": self._next_generation(),
            "items_seen": summary.items_seen,
            "checksum": _state_crc(state),
            "state": state,
        }
        payload = json.dumps(envelope, separators=(",", ":"))
        generation = envelope["generation"]
        final = os.path.join(self.directory, f"snapshot-{generation:08d}.json")
        tmp = final + ".tmp"
        with open(tmp, "w", encoding="ascii") as handle:
            if plan is not None and plan.take("snapshot.tmp-write"):
                # Crash mid-write: a torn temp file, never visible to load().
                handle.write(payload[: len(payload) // 2])
                handle.flush()
                raise InjectedFaultError(
                    "injected fault at 'snapshot.tmp-write'"
                )
            handle.write(payload)
            handle.flush()
            fire(plan, "snapshot.fsync")
            os.fsync(handle.fileno())
        fire(plan, "snapshot.rename")
        os.replace(tmp, final)
        fire(plan, "snapshot.commit")
        self._fsync_directory()
        self._prune()
        if self._journal is not None:
            self._journal.compact(self._oldest_retained_items())
        return generation

    # -- read side ------------------------------------------------------------

    def generations(self) -> list[int]:
        """Snapshot generations on disk, oldest first (validity not checked)."""
        found = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def load(self) -> Optional[tuple[object, int]]:
        """Newest *valid* snapshot as ``(summary, generation)``.

        Corrupt or torn generations are skipped newest-first (the
        fallback-to-previous-generation guarantee).  Returns ``None`` when
        the store holds no snapshot files at all; raises
        :class:`CheckpointCorruptionError` when snapshots exist but none
        validates.
        """
        generations = self.generations()
        if not generations:
            return None
        skipped = 0
        for generation in reversed(generations):
            envelope = self._read_envelope(generation)
            if envelope is None:
                skipped += 1
                continue
            summary = restore(envelope["state"])
            self._skipped = skipped
            return summary, generation
        raise CheckpointCorruptionError(
            f"no usable snapshot in {self.directory!r}: all "
            f"{len(generations)} generation(s) failed validation"
        )

    _skipped = 0

    def recover(self, *, factory=None):
        """Rebuild the summary: newest good snapshot + journal tail replay.

        ``factory`` (a zero-argument callable returning a fresh summary)
        handles the crash-before-first-snapshot case; without it an empty
        store raises :class:`CheckpointCorruptionError`.  The journal may
        overlap the snapshot (records are journaled before ingestion), so
        replay skips values the snapshot already covers, keyed off
        ``items_seen``.  Details of what happened land in
        :attr:`last_recovery`.
        """
        loaded = self.load()
        if loaded is None:
            if factory is None:
                raise CheckpointCorruptionError(
                    f"no snapshot in {self.directory!r} and no factory "
                    "to start fresh from"
                )
            summary, generation = factory(), None
        else:
            summary, generation = loaded
        snapshot_items = summary.items_seen
        records = 0
        replayed = 0
        if self._journal is not None:
            for start, values in self._journal.replay():
                records += 1
                seen = summary.items_seen
                if start > seen:
                    raise CheckpointCorruptionError(
                        f"journal gap: record starts at {start} but the "
                        f"summary has only seen {seen} items"
                    )
                if start + len(values) <= seen:
                    continue
                tail = values[seen - start :]
                summary.extend(tail)
                replayed += len(tail)
        self.last_recovery = RecoveryReport(
            generation=generation,
            snapshot_items=snapshot_items,
            journal_records=records,
            replayed_items=replayed,
            skipped_generations=self._skipped if loaded is not None else 0,
        )
        return summary

    # -- internals ------------------------------------------------------------

    def _next_generation(self) -> int:
        generations = self.generations()
        return (generations[-1] + 1) if generations else 1

    def _read_envelope(self, generation: int) -> Optional[dict]:
        path = os.path.join(
            self.directory, f"snapshot-{generation:08d}.json"
        )
        try:
            with open(path, "r", encoding="ascii") as handle:
                envelope = json.load(handle)
            if envelope.get("format") != _FORMAT:
                return None
            if envelope.get("version") != SNAPSHOT_VERSION:
                return None
            state = envelope["state"]
            if _state_crc(state) != envelope["checksum"]:
                return None
            return envelope
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _prune(self) -> None:
        plan = self.fault_plan
        # Stale temp files first (leftovers of crashed saves), then old
        # generations beyond the retention budget.
        for name in os.listdir(self.directory):
            if name.endswith(".json.tmp"):
                self._unlink(os.path.join(self.directory, name))
        generations = self.generations()
        for generation in generations[: -self.keep]:
            self._unlink(
                os.path.join(
                    self.directory, f"snapshot-{generation:08d}.json"
                )
            )
            fire(plan, "snapshot.prune")

    def _oldest_retained_items(self) -> int:
        """``items_seen`` of the oldest generation a fallback could load."""
        smallest = None
        for generation in self.generations():
            envelope = self._read_envelope(generation)
            if envelope is None:
                continue
            items = envelope.get("items_seen", 0)
            if smallest is None or items < smallest:
                smallest = items
        return 0 if smallest is None else smallest

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX platforms
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    @staticmethod
    def _unlink(path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - racing cleaners
            pass
