"""Append-only item journal: the replay tail of a crash-consistent store.

Snapshots are periodic; the items that arrived since the last snapshot
would be lost in a crash.  The journal closes that gap: every ingested
batch is appended *before* it reaches the summary, so

    recover = load newest good snapshot + replay the journal tail

reproduces the uninterrupted run bit for bit (the summaries' batch ingest
is split-invariant -- property-tested in ``tests/test_batch.py`` -- so
replaying in journal-record chunks matches any original chunking).

Record format: one JSON object per line,

    {"start": <absolute index of the first value>, "values": [...],
     "crc": <crc32 of the canonical start/values JSON>}

A crash mid-append leaves a torn final line; a torn or bit-flipped record
fails JSON parsing or its CRC and *ends* replay -- everything after the
first bad record is untrusted, which is exactly right for an append-only
file where corruption can only be a torn tail.  :meth:`ItemJournal.replay`
reports how many trailing bytes it ignored.

The store compacts the journal after each snapshot, dropping records
entirely covered by the *oldest retained* generation -- not the newest, so
falling back a generation after snapshot corruption still finds the tail
it needs.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterator, Optional, Sequence

from repro.exceptions import InjectedFaultError
from repro.resilience.faults import fire


def _record_crc(start: int, values: list) -> int:
    canonical = json.dumps(
        {"start": start, "values": values}, sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("ascii"))


def _plain(value):
    return value.item() if hasattr(value, "item") else value


class ItemJournal:
    """Append-only journal of ingested batches with per-record checksums.

    Parameters
    ----------
    path:
        Journal file location (created on first append).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` consulted at the
        ``journal.append`` and ``journal.fsync`` points (tests only).
    """

    def __init__(self, path, *, fault_plan=None) -> None:
        self.path = os.fspath(path)
        self.fault_plan = fault_plan

    def __len__(self) -> int:
        """Number of valid records (reads the file; use sparingly)."""
        return sum(1 for _ in self.replay())

    def exists(self) -> bool:
        """Whether the journal file is present on disk."""
        return os.path.exists(self.path)

    def append(self, values: Sequence, *, start: int) -> None:
        """Durably append one batch beginning at absolute index ``start``.

        The record is written and fsynced before the caller feeds the
        values to its summary, so a crash at any point leaves the journal
        covering at least as much of the stream as the summary saw.
        """
        values = [_plain(v) for v in values]
        record = {
            "start": int(start),
            "values": values,
            "crc": _record_crc(int(start), values),
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self.path, "ab") as handle:
            plan = self.fault_plan
            if plan is not None and plan.take("journal.append"):
                # Simulate a crash mid-write: half the record's bytes make
                # it to disk, leaving a torn tail for replay to reject.
                handle.write(line[: max(1, len(line) // 2)].encode("ascii"))
                handle.flush()
                os.fsync(handle.fileno())
                raise InjectedFaultError("injected fault at 'journal.append'")
            handle.write(line.encode("ascii"))
            handle.flush()
            fire(plan, "journal.fsync")
            os.fsync(handle.fileno())

    def replay(self) -> Iterator[tuple[int, list]]:
        """Yield ``(start, values)`` for each valid record, oldest first.

        Stops at the first torn or corrupt record; see
        :meth:`ignored_tail_bytes` for how much was skipped on the last
        replay.
        """
        self._ignored = 0
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        for line in raw.splitlines(keepends=True):
            # A final line without its newline is torn even if it parses:
            # the trailing newline is part of the committed record.
            record = _parse_record(line) if line.endswith(b"\n") else None
            if record is None:
                self._ignored = len(raw) - offset
                return
            offset += len(line)
            yield record

    _ignored = 0

    def ignored_tail_bytes(self) -> int:
        """Bytes dropped as torn/corrupt by the most recent replay."""
        return self._ignored

    def compact(self, min_start: int) -> int:
        """Atomically drop records whose values all precede ``min_start``.

        Returns the number of records kept.  ``min_start`` must be the
        ``items_seen`` of the *oldest retained* snapshot generation, so a
        fallback load still finds its tail.  The rewrite goes through the
        same write-temp + fsync + rename protocol as snapshots.
        """
        kept = [
            (start, values)
            for start, values in self.replay()
            if start + len(values) > min_start
        ]
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            for start, values in kept:
                record = {
                    "start": start,
                    "values": values,
                    "crc": _record_crc(start, values),
                }
                handle.write(
                    (json.dumps(record, separators=(",", ":")) + "\n").encode(
                        "ascii"
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return len(kept)

    def clear(self) -> None:
        """Delete the journal file (a fresh store, or journaling turned off)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _parse_record(line: bytes) -> Optional[tuple[int, list]]:
    """Decode and checksum one journal line; None when torn or corrupt."""
    try:
        record = json.loads(line)
        start = record["start"]
        values = record["values"]
        crc = record["crc"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(start, int) or not isinstance(values, list):
        return None
    if _record_crc(start, values) != crc:
        return None
    return start, values
