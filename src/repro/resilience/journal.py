"""Append-only item journal: the replay tail of a crash-consistent store.

Snapshots are periodic; the items that arrived since the last snapshot
would be lost in a crash.  The journal closes that gap: every ingested
batch is appended *before* it reaches the summary, so

    recover = load newest good snapshot + replay the journal tail

reproduces the uninterrupted run bit for bit (the summaries' batch ingest
is split-invariant -- property-tested in ``tests/test_batch.py`` -- so
replaying in journal-record chunks matches any original chunking).

Record format: one JSON object per line,

    {"start": <absolute index of the first value>, "values": [...],
     "crc": <crc32 of the canonical start/values JSON>}

A crash mid-append leaves a torn final line; a torn or bit-flipped record
fails JSON parsing or its CRC and *ends* replay -- everything after the
first bad record is untrusted, which is exactly right for an append-only
file where corruption can only be a torn tail.  :meth:`ItemJournal.replay`
reports how many trailing bytes it ignored.

The store compacts the journal after each snapshot, dropping records
entirely covered by the *oldest retained* generation -- not the newest, so
falling back a generation after snapshot corruption still finds the tail
it needs.

**Group commit**: ``append(..., sync=False)`` writes the record but defers
the fsync; a later ``sync()`` -- or any subsequent ``sync=True`` append on
the same journal -- durably commits every deferred record at once (one
fsync covers the whole file).  The service engine uses this to coalesce
fsyncs onto batch-queue drain boundaries instead of paying one fsync per
append; the safety invariant (journal coverage >= summary coverage at
snapshot time) is restored by :meth:`CheckpointStore.save`, which syncs
the journal before a snapshot becomes visible.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterator, Optional, Sequence

from repro.exceptions import InjectedFaultError
from repro.resilience.faults import fire


def _record_crc(start: int, values: list) -> int:
    canonical = json.dumps(
        {"start": start, "values": values}, sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("ascii"))


def _plain(value):
    return value.item() if hasattr(value, "item") else value


class ItemJournal:
    """Append-only journal of ingested batches with per-record checksums.

    Parameters
    ----------
    path:
        Journal file location (created on first append).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` consulted at the
        ``journal.append`` and ``journal.fsync`` points (tests only).
    """

    def __init__(self, path, *, fault_plan=None) -> None:
        self.path = os.fspath(path)
        self.fault_plan = fault_plan
        self._handle = None
        self._dirty = False

    def __len__(self) -> int:
        """Number of valid records (reads the file; use sparingly)."""
        return sum(1 for _ in self.replay())

    def exists(self) -> bool:
        """Whether the journal file is present on disk."""
        return os.path.exists(self.path)

    def _file(self):
        """The persistent append handle (reopened after compact/clear)."""
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "ab")
        return self._handle

    def _drop_handle(self) -> None:
        """Close the append handle (the path is about to be replaced)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        self._dirty = False

    def append(self, values: Sequence, *, start: int, sync: bool = True) -> None:
        """Append one batch beginning at absolute index ``start``.

        With ``sync=True`` (the default) the record is fsynced before
        returning -- and, because one fsync covers the whole file, so is
        every earlier ``sync=False`` record.  The caller feeds the values
        to its summary only after this returns, so a crash at any point
        leaves the journal covering at least as much of the stream as
        was durably acknowledged.  ``sync=False`` is the group-commit
        half: write now, commit at the next :meth:`sync` boundary.
        """
        tolist = getattr(values, "tolist", None)
        values = tolist() if tolist is not None else [_plain(v) for v in values]
        record = {
            "start": int(start),
            "values": values,
            "crc": _record_crc(int(start), values),
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        handle = self._file()
        plan = self.fault_plan
        if plan is not None and plan.take("journal.append"):
            # Simulate a crash mid-write: half the record's bytes make
            # it to disk, leaving a torn tail for replay to reject.
            handle.write(line[: max(1, len(line) // 2)].encode("ascii"))
            handle.flush()
            os.fsync(handle.fileno())
            raise InjectedFaultError("injected fault at 'journal.append'")
        handle.write(line.encode("ascii"))
        if sync:
            handle.flush()
            fire(plan, "journal.fsync")
            os.fsync(handle.fileno())
            self._dirty = False
        else:
            self._dirty = True

    def sync(self) -> None:
        """Durably commit every deferred (``sync=False``) record."""
        if not self._dirty:
            return
        handle = self._file()
        handle.flush()
        fire(self.fault_plan, "journal.fsync")
        os.fsync(handle.fileno())
        self._dirty = False

    def close(self) -> None:
        """Sync any deferred records and release the append handle."""
        if self._dirty:
            self.sync()
        self._drop_handle()

    def replay(self) -> Iterator[tuple[int, list]]:
        """Yield ``(start, values)`` for each valid record, oldest first.

        Stops at the first torn or corrupt record; see
        :meth:`ignored_tail_bytes` for how much was skipped on the last
        replay.
        """
        self._ignored = 0
        if self._handle is not None and not self._handle.closed:
            # Make deferred appends visible to the read-side open below
            # (flush to the OS; durability is sync()'s job, not replay's).
            self._handle.flush()
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        offset = 0
        for line in raw.splitlines(keepends=True):
            # A final line without its newline is torn even if it parses:
            # the trailing newline is part of the committed record.
            record = _parse_record(line) if line.endswith(b"\n") else None
            if record is None:
                self._ignored = len(raw) - offset
                return
            offset += len(line)
            yield record

    _ignored = 0

    def ignored_tail_bytes(self) -> int:
        """Bytes dropped as torn/corrupt by the most recent replay."""
        return self._ignored

    def compact(self, min_start: int) -> int:
        """Atomically drop records whose values all precede ``min_start``.

        Returns the number of records kept.  ``min_start`` must be the
        ``items_seen`` of the *oldest retained* snapshot generation, so a
        fallback load still finds its tail.  The rewrite goes through the
        same write-temp + fsync + rename protocol as snapshots.
        """
        kept = [
            (start, values)
            for start, values in self.replay()
            if start + len(values) > min_start
        ]
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            for start, values in kept:
                record = {
                    "start": start,
                    "values": values,
                    "crc": _record_crc(start, values),
                }
                handle.write(
                    (json.dumps(record, separators=(",", ":")) + "\n").encode(
                        "ascii"
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        # The append handle (if open) still points at the replaced inode;
        # drop it so the next append reopens the compacted file.
        self._drop_handle()
        return len(kept)

    def clear(self) -> None:
        """Delete the journal file (a fresh store, or journaling turned off)."""
        self._drop_handle()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _parse_record(line: bytes) -> Optional[tuple[int, list]]:
    """Decode and checksum one journal line; None when torn or corrupt."""
    try:
        record = json.loads(line)
        start = record["start"]
        values = record["values"]
        crc = record["crc"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(start, int) or not isinstance(values, list):
        return None
    if _record_crc(start, values) != crc:
        return None
    return start, values
