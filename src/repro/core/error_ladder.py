"""The geometric target-error ladder shared by the MIN-INCREMENT variants.

MIN-INCREMENT (Section 2.2) runs one GREEDY-INSERT summary per target error
``e_i = (1 + eps)^i`` for ``i = 0, 1, ..., ceil(log_{1+eps} U)``.  Because
consecutive targets are a factor ``(1 + eps)`` apart, some target ``e_j``
always satisfies ``e_opt <= e_j <= (1 + eps) * e_opt`` (inequality 2 of the
paper), which is where the (1 + eps, 1) guarantee comes from.

One deliberate refinement (documented in DESIGN.md item 5): the ladder is
prepended with the *exact* levels ``e = 0`` and ``e = 1/2``.  Stream values
are integers, so bucket errors are half-integers: every achievable error
below the ladder base 1 is exactly 0 or 1/2, and without these levels the
``(1 + eps)`` factor breaks for small optima (for the stream ``[0, 2, 3]``
with B = 2 the optimum is 1/2, but the best pure-geometric level is 1 --
a factor-2 answer).  Two extra levels repair the guarantee for every
integer stream and cost O(1) words.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.exceptions import InvalidParameterError


class ErrorLadder(Sequence):
    """Immutable ascending sequence of target errors.

    Parameters
    ----------
    epsilon:
        The approximation parameter, ``0 < epsilon < 1``.
    universe:
        The size ``U`` of the integer value domain ``[0, U)``.  The largest
        possible histogram error is ``(U - 1) / 2`` (one bucket spanning the
        whole domain), so the ladder stops at the first level ``>= U / 2``.
    include_zero_level:
        Prepend the exact levels ``e = 0`` and ``e = 1/2`` (default True;
        see module docs).
    """

    def __init__(
        self,
        epsilon: float,
        universe: int,
        *,
        include_zero_level: bool = True,
    ):
        if not 0 < epsilon < 1:
            raise InvalidParameterError(
                f"epsilon must lie in (0, 1), got {epsilon}"
            )
        if universe < 2:
            raise InvalidParameterError(
                f"universe must be at least 2, got {universe}"
            )
        self.epsilon = epsilon
        self.universe = universe
        levels: list[float] = [0.0, 0.5] if include_zero_level else []
        e = 1.0
        top = universe / 2.0
        while True:
            levels.append(e)
            if e >= top:
                break
            e *= 1.0 + epsilon
        self._levels = tuple(levels)

    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, i):
        return self._levels[i]

    def __iter__(self) -> Iterator[float]:
        return iter(self._levels)

    def __repr__(self) -> str:
        return (
            f"ErrorLadder(epsilon={self.epsilon}, universe={self.universe}, "
            f"levels={len(self._levels)})"
        )

    def covering_level(self, error: float) -> float:
        """Smallest ladder level ``>= error``.

        This is the ``e_j`` of inequality 2: for any achievable optimal
        error, the returned level is within a ``(1 + eps)`` factor of it.
        """
        if error < 0:
            raise InvalidParameterError(f"error must be >= 0, got {error}")
        for level in self._levels:
            if level >= error:
                return level
        return self._levels[-1]

    @staticmethod
    def expected_size(epsilon: float, universe: int) -> int:
        """The O(eps^-1 log U) level count the theory predicts (no zero level)."""
        if universe <= 2:
            return 1
        return 1 + math.ceil(math.log(universe / 2.0) / math.log(1.0 + epsilon))
