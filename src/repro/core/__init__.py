"""Core streaming algorithms of the paper.

The primary contribution: MIN-MERGE (Section 2.1), MIN-INCREMENT
(Section 2.2), their piecewise-linear extensions (Section 3), and the
sliding-window MIN-INCREMENT (Section 4.1).
"""

from repro.core.bucket import Bucket
from repro.core.histogram import Histogram, Segment
from repro.core.error_ladder import ErrorLadder
from repro.core.interface import (
    DEFAULT_HULL_EPSILON,
    StreamingSummary,
    conforms,
    missing_members,
)
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.min_merge import MinMergeHistogram
from repro.core.min_increment import MinIncrementHistogram
from repro.core.sliding_window import SlidingWindowMinIncrement
from repro.core.sliding_window_pwl import SlidingWindowPwlMinIncrement
from repro.core.pwl_bucket import PwlBucket
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.core.pwl_min_increment import (
    PwlGreedyInsertSummary,
    PwlMinIncrementHistogram,
)

__all__ = [
    "Bucket",
    "Histogram",
    "Segment",
    "ErrorLadder",
    "DEFAULT_HULL_EPSILON",
    "StreamingSummary",
    "conforms",
    "missing_members",
    "GreedyInsertSummary",
    "MinMergeHistogram",
    "MinIncrementHistogram",
    "SlidingWindowMinIncrement",
    "SlidingWindowPwlMinIncrement",
    "PwlBucket",
    "PwlMinMergeHistogram",
    "PwlGreedyInsertSummary",
    "PwlMinIncrementHistogram",
]
