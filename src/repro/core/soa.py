"""Structure-of-arrays kernels behind ``backend="soa"``.

These kernels re-implement the MIN-MERGE maintenance loop (Section 2.1)
over flat columns indexed by integer *slots* instead of linked
``Bucket`` objects: ``beg``/``end``/``mn``/``mx`` hold the bucket state,
``prv``/``nxt`` form an intrusive doubly-linked list of slots (``-1``
terminates, ``-2`` marks a freed slot), and ``pkey`` caches each
adjacent pair's merge error for the lazy-deletion heap in
:mod:`repro.core.soa_heap`.  There are no per-item allocations on the
hot path -- freed slots are recycled through a free list -- and FINDMIN
runs on the C ``heapq`` instead of an interpreted sift.

The columns are plain Python lists, not numpy arrays: CPython list
indexing costs a fraction of ndarray scalar indexing, and the scalar
``insert()`` loop is exactly the workload this backend exists to speed
up.  Numpy is used where it wins -- the batched ``extend`` certificate
-- and :meth:`SoaMinMerge.as_arrays` materializes the columns as
contiguous arrays on demand: the natural FFI ABI should a native kernel
ever slot in behind the same facade.

Bit-identity with the object backend is a hard contract, not an
aspiration: merge keys are the same unique ``(error, beg)`` tuples as
``MinMergeHistogram._push_pair_key``, min/max unions replicate
``Bucket.merged_with``'s tie-breaking comparisons operator-for-operator
(preserving ``int`` vs ``float`` identity), and the batched-ingest
certificate is the same strict inequality over the same accumulates.
The cross-backend equivalence suite (``tests/test_soa.py``) asserts
equality of full bucket states, not just errors.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, Optional

import numpy as np

from repro.core.batch import MAX_WINDOW, absorbable_prefix
from repro.core.bucket import Bucket
from repro.core.pwl_bucket import PwlBucket
from repro.core.soa_heap import (
    COMPACT_FLOOR,
    COMPACT_RATIO,
    check_heap,
    compact,
    pop_min_valid,
    static_min_excluding,
)
from repro.exceptions import InvalidParameterError


class SoaMinMerge:
    """Array-backed serial MIN-MERGE kernel (Algorithm 1)."""

    __slots__ = (
        "cap",
        "beg",
        "end",
        "mn",
        "mx",
        "prv",
        "nxt",
        "pkey",
        "free",
        "head",
        "tail",
        "size",
        "heap",
        "n",
    )

    def __init__(self, working_buckets: int):
        self.cap = working_buckets
        self.beg: list = []
        self.end: list = []
        self.mn: list = []
        self.mx: list = []
        self.prv: list = []
        self.nxt: list = []
        self.pkey: list = []
        self.free: list = []
        self.head = -1
        self.tail = -1
        self.size = 0
        self.heap: list = []
        self.n = 0

    # -- ingestion ---------------------------------------------------------

    def insert(self, value) -> bool:
        """Process one stream value; returns whether a merge happened.

        Two specializations, both bit-identical to Algorithm 1's
        append-then-merge:

        * **Tail-absorb fast path.**  At capacity, if the would-be
          (tail, singleton) pair key is strictly below ``heap[0]``, that
          pair is certifiably FINDMIN's answer: ``heap[0]`` lower-bounds
          every current pair key (each pair keeps a current entry), and
          no current entry can carry the tail's ``beg``, so the strict
          tuple compare ``(key, beg[tail]) < heap[0]`` proves the new
          pair is the unique leftmost-cheapest.  Appending the singleton
          and merging it back is then just extending the tail in place
          -- no allocation, no heap traffic.  A stale ``heap[0]`` can
          only under-estimate and send us down the general path, which
          is correct either way.
        * **Inlined merge.**  The general path inlines
          FINDMIN + MERGE rather than delegating to helpers: at capacity
          every insert merges, so the call frames are a measurable slice
          of the per-item budget.
        """
        n = self.n
        t = self.tail
        if self.size >= self.cap and t >= 0:
            mn = self.mn
            mx = self.mx
            heap = self.heap
            lo = mn[t]
            if value < lo:
                lo = value
            hi = mx[t]
            if value > hi:
                hi = value
            key = (hi - lo) / 2.0
            bt = self.beg[t]
            if not heap or (key, bt) < heap[0]:
                mn[t] = lo
                mx[t] = hi
                self.end[t] = n
                self.n = n + 1
                p = self.prv[t]
                if p >= 0:
                    pkey = self.pkey
                    plo = mn[p]
                    if lo < plo:
                        plo = lo
                    phi = mx[p]
                    if hi > phi:
                        phi = hi
                    k2 = (phi - plo) / 2.0
                    if k2 != pkey[p]:
                        pkey[p] = k2
                        heappush(heap, (k2, self.beg[p], p))
                        if len(heap) > COMPACT_FLOOR and len(
                            heap
                        ) > COMPACT_RATIO * self.size:
                            compact(heap, self.nxt, self.beg, pkey)
                return True
        nxt = self.nxt
        prv = self.prv
        beg = self.beg
        end = self.end
        mn = self.mn
        mx = self.mx
        pkey = self.pkey
        heap = self.heap
        t = self.tail
        free = self.free
        if free:
            s = free.pop()
            beg[s] = n
            end[s] = n
            mn[s] = value
            mx[s] = value
            prv[s] = t
            nxt[s] = -1
        else:
            s = len(nxt)
            beg.append(n)
            end.append(n)
            mn.append(value)
            mx.append(value)
            prv.append(t)
            nxt.append(-1)
            pkey.append(0.0)
        if t >= 0:
            nxt[t] = s
            # merge_error_with(prev, singleton), keeping prev's endpoint
            # object on ties exactly like Bucket.merge_error_with.
            lo = mn[t]
            if value < lo:
                lo = value
            hi = mx[t]
            if value > hi:
                hi = value
            key = (hi - lo) / 2.0
            pkey[t] = key
            heappush(heap, (key, beg[t], t))
        else:
            self.head = s
        self.tail = s
        size = self.size + 1
        self.size = size
        self.n = n + 1
        if size <= self.cap:
            return False
        # -- inlined _merge_min_pair ----------------------------------------
        while True:
            err, b, s = heappop(heap)
            if nxt[s] >= 0 and beg[s] == b and pkey[s] == err:
                break
        r = nxt[s]
        v = mn[r]
        if v < mn[s]:
            mn[s] = v
        v = mx[r]
        if v > mx[s]:
            mx[s] = v
        end[s] = end[r]
        rn = nxt[r]
        nxt[s] = rn
        if rn >= 0:
            prv[rn] = s
            lo = mn[s]
            v = mn[rn]
            if v < lo:
                lo = v
            hi = mx[s]
            v = mx[rn]
            if v > hi:
                hi = v
            key = (hi - lo) / 2.0
            pkey[s] = key
            heappush(heap, (key, beg[s], s))
        else:
            self.tail = s
        nxt[r] = -2
        free.append(r)
        size -= 1
        self.size = size
        p = prv[s]
        if p >= 0:
            lo = mn[p]
            v = mn[s]
            if v < lo:
                lo = v
            hi = mx[p]
            v = mx[s]
            if v > hi:
                hi = v
            key = (hi - lo) / 2.0
            if key != pkey[p]:
                pkey[p] = key
                heappush(heap, (key, beg[p], p))
        if len(heap) > COMPACT_FLOOR and len(heap) > COMPACT_RATIO * size:
            compact(heap, nxt, beg, pkey)
        return True

    def _merge_min_pair(self) -> None:
        """FINDMIN + MERGE: collapse the cheapest (leftmost) adjacent pair."""
        heap = self.heap
        nxt = self.nxt
        beg = self.beg
        pkey = self.pkey
        mn = self.mn
        mx = self.mx
        _err, _b, s = pop_min_valid(heap, nxt, beg, pkey)
        r = nxt[s]
        # Union r into s with Bucket.merged_with's tie-breaking: the left
        # endpoint object survives equality.
        v = mn[r]
        if v < mn[s]:
            mn[s] = v
        v = mx[r]
        if v > mx[s]:
            mx[s] = v
        self.end[s] = self.end[r]
        rn = nxt[r]
        nxt[s] = rn
        if rn >= 0:
            self.prv[rn] = s
            lo = mn[s]
            v = mn[rn]
            if v < lo:
                lo = v
            hi = mx[s]
            v = mx[rn]
            if v > hi:
                hi = v
            key = (hi - lo) / 2.0
            pkey[s] = key
            heappush(heap, (key, beg[s], s))
        else:
            self.tail = s
        nxt[r] = -2
        self.free.append(r)
        self.size -= 1
        p = self.prv[s]
        if p >= 0:
            lo = mn[p]
            v = mn[s]
            if v < lo:
                lo = v
            hi = mx[p]
            v = mx[s]
            if v > hi:
                hi = v
            key = (hi - lo) / 2.0
            if key != pkey[p]:
                pkey[p] = key
                heappush(heap, (key, beg[p], p))
        if len(heap) > COMPACT_FLOOR and len(heap) > COMPACT_RATIO * self.size:
            compact(heap, nxt, beg, pkey)

    def extend_chunk(self, arr) -> int:
        """Batch-ingest one chunk; returns the number of merges performed.

        Same certificate as ``MinMergeHistogram._extend_chunk``: a prefix
        is absorbed into the tail iff every per-item pair key stays
        strictly below both the evolving (prev, tail) key and the
        cheapest untouched pair, checked with the same accumulates and
        strict inequalities -- so the final state is bit-identical to the
        scalar loop regardless of where the windows land.
        """
        insert = self.insert
        cap = self.cap
        n = len(arr)
        i = 0
        while i < n and self.size < cap:
            insert(arr[i].item())
            i += 1
        if i == n:
            return 0
        merges = 0
        mn = self.mn
        mx = self.mx
        if cap == 1:
            rest = arr[i:]
            h = self.head
            self.end[h] = self.n + (n - i) - 1
            lo = rest.min().item()
            hi = rest.max().item()
            if lo < mn[h]:
                mn[h] = lo
            if hi > mx[h]:
                mx[h] = hi
            self.n += n - i
            return n - i
        beg = self.beg
        pkey = self.pkey
        prv = self.prv
        nxt = self.nxt
        heap = self.heap
        window = 256
        short = 0
        block = 64
        while i < n:
            if short >= 8:
                # Sticky scalar fallback, as in the object backend.
                short = 0
                stop = min(n, i + block)
                if block < MAX_WINDOW:
                    block *= 8
                for v in arr[i:stop].tolist():
                    insert(v)
                merges += stop - i
                i = stop
                if i == n:
                    break
            t = self.tail
            p = prv[t]
            pair_key = pkey[p]
            static_min = static_min_excluding(heap, nxt, beg, pkey, p)
            seg = arr[i : i + window]
            ehi = np.maximum(np.maximum.accumulate(seg), mx[t])
            elo = np.minimum(np.minimum.accumulate(seg), mn[t])
            key = (ehi - elo) / 2.0
            pair = (np.maximum(ehi, mx[p]) - np.minimum(elo, mn[p])) / 2.0
            evolving = np.empty_like(pair)
            evolving[0] = pair_key
            evolving[1:] = pair[:-1]
            good = (key < static_min) & (key < evolving)
            if good.all():
                run = len(seg)
            else:
                run = int(np.argmin(good))
            if run:
                lo = elo[run - 1].item()
                hi = ehi[run - 1].item()
                self.end[t] = self.n + run - 1
                if lo < mn[t]:
                    mn[t] = lo
                if hi > mx[t]:
                    mx[t] = hi
                self.n += run
                merges += run
                i += run
                lo = mn[p]
                v = mn[t]
                if v < lo:
                    lo = v
                hi = mx[p]
                v = mx[t]
                if v > hi:
                    hi = v
                nk = (hi - lo) / 2.0
                if nk != pair_key:
                    pkey[p] = nk
                    heappush(heap, (nk, beg[p], p))
                if run == len(seg):
                    window = min(window * 2, MAX_WINDOW)
                    continue
                window = 256
            if run < 4:
                short += 1
            else:
                short = 0
                block = 64
            if i < n:
                insert(arr[i].item())
                merges += 1
                i += 1
        return merges

    def insert_run(self, beg_i: int, end_i: int, lo, hi) -> bool:
        """O(log B) pre-reduced run ingest (see the facade's docstring)."""
        if beg_i != self.n:
            raise InvalidParameterError(
                f"run starts at {beg_i}, summary expects {self.n}"
            )
        if end_i < beg_i or lo > hi:
            raise InvalidParameterError(
                f"invalid run [{beg_i}, {end_i}] with bounds [{lo}, {hi}]"
            )
        count = end_i - beg_i + 1
        mn = self.mn
        mx = self.mx
        if self.cap == 1 and self.size == 1:
            h = self.head
            self.end[h] = end_i
            if lo < mn[h]:
                mn[h] = lo
            if hi > mx[h]:
                mx[h] = hi
            self.n += count
            return True
        if self.size != self.cap or self.cap < 2:
            return False
        t = self.tail
        p = self.prv[t]
        tmn = mn[t]
        tmx = mx[t]
        new_lo = lo if lo < tmn else tmn
        new_hi = hi if hi > tmx else tmx
        run_key = (new_hi - new_lo) / 2.0
        pair_key = self.pkey[p]
        static_min = static_min_excluding(self.heap, self.nxt, self.beg, self.pkey, p)
        if not (run_key < pair_key and run_key < static_min):
            return False
        self.end[t] = end_i
        mn[t] = new_lo
        mx[t] = new_hi
        plo = mn[p]
        if new_lo < plo:
            plo = new_lo
        phi = mx[p]
        if new_hi > phi:
            phi = new_hi
        key = (phi - plo) / 2.0
        if key != pair_key:
            self.pkey[p] = key
            heappush(self.heap, (key, self.beg[p], p))
        self.n += count
        return True

    # -- aggregation hooks -------------------------------------------------

    def adopt_buckets(self, buckets: Iterable[Bucket], count: Optional[int]) -> None:
        """Append pre-built buckets after the tail (parallel merge hook)."""
        last = self.end[self.tail] if self.size else None
        span = 0
        for bucket in buckets:
            if last is not None and bucket.beg <= last:
                raise InvalidParameterError(
                    f"adopted bucket [{bucket.beg}, {bucket.end}] does not "
                    f"follow the current tail (last covered index {last})"
                )
            last = bucket.end
            span += bucket.end - bucket.beg + 1
            self._append_bucket(bucket.beg, bucket.end, bucket.min, bucket.max)
        self.n += span if count is None else count

    def _append_bucket(self, b: int, e: int, lo, hi) -> None:
        nxt = self.nxt
        t = self.tail
        free = self.free
        if free:
            s = free.pop()
            self.beg[s] = b
            self.end[s] = e
            self.mn[s] = lo
            self.mx[s] = hi
            self.prv[s] = t
            nxt[s] = -1
        else:
            s = len(nxt)
            self.beg.append(b)
            self.end.append(e)
            self.mn.append(lo)
            self.mx.append(hi)
            self.prv.append(t)
            nxt.append(-1)
            self.pkey.append(0.0)
        if t >= 0:
            nxt[t] = s
            plo = self.mn[t]
            if lo < plo:
                plo = lo
            phi = self.mx[t]
            if hi > phi:
                phi = hi
            key = (phi - plo) / 2.0
            self.pkey[t] = key
            heappush(self.heap, (key, self.beg[t], t))
        else:
            self.head = s
        self.tail = s
        self.size += 1

    def compact(self) -> int:
        """Merge cheapest pairs until the working budget holds."""
        merges = 0
        while self.size > self.cap:
            self._merge_min_pair()
            merges += 1
        return merges

    # -- queries -----------------------------------------------------------

    def iter_buckets(self):
        """Yield ``(beg, end, min, max)`` per bucket, in stream order."""
        beg = self.beg
        end = self.end
        mn = self.mn
        mx = self.mx
        nxt = self.nxt
        s = self.head
        while s >= 0:
            yield beg[s], end[s], mn[s], mx[s]
            s = nxt[s]

    def buckets_snapshot(self) -> list:
        """Copy of the current buckets as :class:`Bucket` objects."""
        return [Bucket(b, e, lo, hi) for b, e, lo, hi in self.iter_buckets()]

    def error(self) -> float:
        """Largest bucket error ``err(S)`` (caller checks non-empty)."""
        mn = self.mn
        mx = self.mx
        nxt = self.nxt
        s = self.head
        best = 0.0
        first = True
        while s >= 0:
            e = (mx[s] - mn[s]) / 2.0
            if first or e > best:
                best = e
                first = False
            s = nxt[s]
        return best

    def as_arrays(self) -> dict:
        """Contiguous numpy views of the live columns, in stream order.

        The export format a native (FFI) kernel would consume directly:
        no object graph, just four parallel arrays.
        """
        order = []
        s = self.head
        nxt = self.nxt
        while s >= 0:
            order.append(s)
            s = nxt[s]
        return {
            "beg": np.array([self.beg[s] for s in order], dtype=np.int64),
            "end": np.array([self.end[s] for s in order], dtype=np.int64),
            "min": np.array([self.mn[s] for s in order], dtype=np.float64),
            "max": np.array([self.mx[s] for s in order], dtype=np.float64),
        }

    # -- invariants (tests) ------------------------------------------------

    def check_consistency(self) -> None:
        """Assert chain, column, and lazy-heap invariants."""
        seen = 0
        prev = -1
        s = self.head
        while s >= 0:
            if self.prv[s] != prev:
                raise AssertionError(f"slot {s} has prv {self.prv[s]} != {prev}")
            if prev >= 0:
                if self.beg[s] != self.end[prev] + 1:
                    raise AssertionError(
                        f"slots {prev},{s} are not adjacent in stream order"
                    )
                lo = self.mn[prev] if self.mn[prev] <= self.mn[s] else self.mn[s]
                hi = self.mx[prev] if self.mx[prev] >= self.mx[s] else self.mx[s]
                if self.pkey[prev] != (hi - lo) / 2.0:
                    raise AssertionError(
                        f"stale pkey {self.pkey[prev]} at slot {prev}"
                    )
            seen += 1
            prev = s
            s = self.nxt[s]
        if seen != self.size:
            raise AssertionError(f"chain holds {seen} slots, size says {self.size}")
        if self.size and self.tail != prev:
            raise AssertionError(f"tail {self.tail} is not the chain end {prev}")
        for s in self.free:
            if self.nxt[s] != -2:
                raise AssertionError(f"free slot {s} not marked dead")
        check_heap(self.heap, self.nxt, self.beg, self.pkey)


class SoaPwlMinMerge:
    """Array-backed PWL MIN-MERGE kernel (Section 3.2).

    Hull geometry stays in :class:`PwlBucket` (slot-indexed, so merges
    reuse the object backend's hull math verbatim -- bit-identity for
    free); the control structure -- slot chain, cached pair keys, lazy
    heap -- is the same SoA layout as :class:`SoaMinMerge`, which is
    where the object backend's per-item overhead lived.
    """

    __slots__ = (
        "cap",
        "hull_epsilon",
        "bkt",
        "beg",
        "prv",
        "nxt",
        "pkey",
        "free",
        "head",
        "tail",
        "size",
        "heap",
        "n",
    )

    def __init__(self, working_buckets: int, hull_epsilon: Optional[float]):
        self.cap = working_buckets
        self.hull_epsilon = hull_epsilon
        self.bkt: list = []
        self.beg: list = []
        self.prv: list = []
        self.nxt: list = []
        self.pkey: list = []
        self.free: list = []
        self.head = -1
        self.tail = -1
        self.size = 0
        self.heap: list = []
        self.n = 0

    # -- ingestion ---------------------------------------------------------

    def insert(self, value) -> bool:
        """Process one stream value; returns whether a merge happened."""
        n = self.n
        bucket = PwlBucket(n, value, hull_epsilon=self.hull_epsilon)
        nxt = self.nxt
        t = self.tail
        free = self.free
        if free:
            s = free.pop()
            self.bkt[s] = bucket
            self.beg[s] = n
            self.prv[s] = t
            nxt[s] = -1
        else:
            s = len(nxt)
            self.bkt.append(bucket)
            self.beg.append(n)
            self.prv.append(t)
            nxt.append(-1)
            self.pkey.append(0.0)
        if t >= 0:
            nxt[t] = s
            key = self.bkt[t].merge_error_with(bucket)
            self.pkey[t] = key
            heappush(self.heap, (key, self.beg[t], t))
        else:
            self.head = s
        self.tail = s
        self.size += 1
        self.n = n + 1
        if self.size > self.cap:
            self._merge_min_pair()
            return True
        return False

    def _merge_min_pair(self) -> None:
        heap = self.heap
        nxt = self.nxt
        beg = self.beg
        pkey = self.pkey
        bkt = self.bkt
        _err, _b, s = pop_min_valid(heap, nxt, beg, pkey)
        r = nxt[s]
        merged = bkt[s].merged_with(bkt[r])
        bkt[s] = merged
        rn = nxt[r]
        nxt[s] = rn
        if rn >= 0:
            self.prv[rn] = s
            key = merged.merge_error_with(bkt[rn])
            pkey[s] = key
            heappush(heap, (key, beg[s], s))
        else:
            self.tail = s
        nxt[r] = -2
        bkt[r] = None
        self.free.append(r)
        self.size -= 1
        p = self.prv[s]
        if p >= 0:
            key = bkt[p].merge_error_with(merged)
            if key != pkey[p]:
                pkey[p] = key
                heappush(heap, (key, beg[p], p))
        if len(heap) > COMPACT_FLOOR and len(heap) > COMPACT_RATIO * self.size:
            compact(heap, nxt, beg, pkey)

    def extend_chunk(self, arr) -> int:
        """Batch-ingest one chunk (exact hulls only); returns merges."""
        insert = self.insert
        cap = self.cap
        bkt = self.bkt
        n = len(arr)
        i = 0
        merges = 0
        while i < n and self.size < cap:
            insert(arr[i].item())
            i += 1
        if i == n:
            return 0
        if cap == 1:
            h = self.head
            tb = bkt[h]
            for v in arr[i:].tolist():
                tb = tb.merged_with(PwlBucket(self.n, v, hull_epsilon=None))
                self.n += 1
                merges += 1
            bkt[h] = tb
            return merges
        beg = self.beg
        pkey = self.pkey
        prv = self.prv
        nxt = self.nxt
        heap = self.heap
        short = 0
        block = 64
        while i < n:
            if short >= 8:
                short = 0
                stop = min(n, i + block)
                if block < MAX_WINDOW:
                    block *= 8
                for v in arr[i:stop].tolist():
                    if insert(v):
                        merges += 1
                i = stop
                if i == n:
                    break
            t = self.tail
            p = prv[t]
            pair_key = pkey[p]
            static_min = static_min_excluding(heap, nxt, beg, pkey, p)
            threshold = pair_key if pair_key < static_min else static_min
            ylo, yhi = bkt[t].hull.y_extent()
            j, _, _ = absorbable_prefix(
                arr, arr, i, ylo, yhi, threshold, inclusive=False
            )
            run = j - i
            if run:
                tb = bkt[t]
                for v in arr[i:j].tolist():
                    tb = tb.merged_with(PwlBucket(self.n, v, hull_epsilon=None))
                    self.n += 1
                bkt[t] = tb
                merges += run
                i = j
                key = bkt[p].merge_error_with(tb)
                if key != pair_key:
                    pkey[p] = key
                    heappush(heap, (key, beg[p], p))
            if run < 4:
                short += 1
            else:
                short = 0
                block = 64
            if i < n:
                if insert(arr[i].item()):
                    merges += 1
                i += 1
        return merges

    # -- aggregation hooks -------------------------------------------------

    def adopt_buckets(self, buckets: Iterable[PwlBucket], count: Optional[int]) -> None:
        """Append pre-built PWL buckets (adopted as-is, hulls shared)."""
        last = self.bkt[self.tail].end if self.size else None
        span = 0
        for bucket in buckets:
            if last is not None and bucket.beg <= last:
                raise InvalidParameterError(
                    f"adopted bucket [{bucket.beg}, {bucket.end}] does not "
                    f"follow the current tail (last covered index {last})"
                )
            last = bucket.end
            span += bucket.end - bucket.beg + 1
            self._append_bucket(bucket)
        self.n += span if count is None else count

    def _append_bucket(self, bucket: PwlBucket) -> None:
        nxt = self.nxt
        t = self.tail
        free = self.free
        if free:
            s = free.pop()
            self.bkt[s] = bucket
            self.beg[s] = bucket.beg
            self.prv[s] = t
            nxt[s] = -1
        else:
            s = len(nxt)
            self.bkt.append(bucket)
            self.beg.append(bucket.beg)
            self.prv.append(t)
            nxt.append(-1)
            self.pkey.append(0.0)
        if t >= 0:
            nxt[t] = s
            key = self.bkt[t].merge_error_with(bucket)
            self.pkey[t] = key
            heappush(self.heap, (key, self.beg[t], t))
        else:
            self.head = s
        self.tail = s
        self.size += 1

    def compact(self) -> int:
        """Merge cheapest pairs until the working budget holds."""
        merges = 0
        while self.size > self.cap:
            self._merge_min_pair()
            merges += 1
        return merges

    # -- queries -----------------------------------------------------------

    def buckets_snapshot(self) -> list:
        """The current buckets, in stream order (shared, do not mutate)."""
        out = []
        s = self.head
        while s >= 0:
            out.append(self.bkt[s])
            s = self.nxt[s]
        return out

    def error(self) -> float:
        """Largest bucket line-fit error (caller checks non-empty)."""
        best = 0.0
        first = True
        s = self.head
        while s >= 0:
            e = self.bkt[s].error
            if first or e > best:
                best = e
                first = False
            s = self.nxt[s]
        return best

    # -- invariants (tests) ------------------------------------------------

    def check_consistency(self) -> None:
        """Assert chain, cached-key, and lazy-heap invariants."""
        seen = 0
        prev = -1
        s = self.head
        while s >= 0:
            if self.prv[s] != prev:
                raise AssertionError(f"slot {s} has prv {self.prv[s]} != {prev}")
            if self.beg[s] != self.bkt[s].beg:
                raise AssertionError(f"beg column stale at slot {s}")
            if prev >= 0:
                expected = self.bkt[prev].merge_error_with(self.bkt[s])
                if self.pkey[prev] != expected:
                    raise AssertionError(
                        f"stale pkey {self.pkey[prev]} at slot {prev}"
                    )
            seen += 1
            prev = s
            s = self.nxt[s]
        if seen != self.size:
            raise AssertionError(f"chain holds {seen} slots, size says {self.size}")
        if self.size and self.tail != prev:
            raise AssertionError(f"tail {self.tail} is not the chain end {prev}")
        check_heap(self.heap, self.nxt, self.beg, self.pkey)
