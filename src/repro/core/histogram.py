"""Histogram result objects.

Every summary in this library answers queries with a :class:`Histogram`: an
immutable sequence of :class:`Segment` pieces, each approximating a
contiguous index range by a line segment.  Serial (piecewise-constant)
histograms are the special case where every segment is horizontal
(``left == right``); piecewise-linear histograms use arbitrary slopes.

The object knows how to reconstruct the approximate series and how to
measure its true error against the original data, which is how the
experiments of Section 5 score the algorithms.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class HistogramMeta:
    """Provenance a :class:`Histogram` optionally carries (``hist.meta``).

    Filled in by :func:`repro.api.summarize` and the service layer's query
    path so callers stop re-deriving "which method, how many buckets, over
    how many items" from context they may no longer have.

    Attributes
    ----------
    method:
        Registry name (or class name) of the producing algorithm.
    buckets:
        Bucket count of this histogram (``len(hist)``).
    requested_buckets:
        The bucket budget ``B`` the caller asked for (the merge family may
        legitimately answer with up to ``2 B``).
    error:
        The producing summary's reported maximum error (``hist.error``).
    items_seen:
        Stream values the producing summary had ingested.
    window:
        Window length for the sliding-window variants, else ``None``.
    epsilon:
        Approximation parameter for the ladder methods, else ``None``.
    """

    method: str
    buckets: int
    requested_buckets: int
    error: float
    items_seen: int
    window: Optional[int] = None
    epsilon: Optional[float] = None

    def to_dict(self) -> dict:
        """Plain-data form (used by the wire format)."""
        return asdict(self)


@dataclass(frozen=True)
class Segment:
    """A line segment approximating stream indices ``[beg, end]`` (inclusive).

    The approximation at index ``beg`` is ``left`` and at index ``end`` is
    ``right``; interior indices are linearly interpolated.  A horizontal
    segment (``left == right``) is a classic histogram bucket.
    """

    beg: int
    end: int
    left: float
    right: float

    def __post_init__(self) -> None:
        if self.beg > self.end:
            raise InvalidParameterError(
                f"segment range [{self.beg}, {self.end}] is empty"
            )

    @property
    def count(self) -> int:
        """Number of indices covered."""
        return self.end - self.beg + 1

    @property
    def slope(self) -> float:
        """Slope of the segment (0 for singleton or horizontal segments)."""
        if self.end == self.beg:
            return 0.0
        return (self.right - self.left) / (self.end - self.beg)

    @property
    def is_constant(self) -> bool:
        """True when the segment is horizontal (a serial-histogram bucket)."""
        return self.left == self.right

    def value_at(self, index: int) -> float:
        """Approximate value at a covered index."""
        if not self.beg <= index <= self.end:
            raise IndexError(
                f"index {index} outside segment [{self.beg}, {self.end}]"
            )
        if self.beg == self.end:
            return self.left
        return self.left + (index - self.beg) * self.slope


class Histogram:
    """An immutable piecewise-linear approximation of a stream prefix.

    Parameters
    ----------
    segments:
        Contiguous, ordered segments covering ``[segments[0].beg,
        segments[-1].end]`` without gaps or overlaps.
    error:
        The error the producing algorithm attributes to this histogram
        (the max bucket error it tracked).  For exact summaries this equals
        the true reconstruction error; approximate summaries may report an
        upper bound.
    meta:
        Optional :class:`HistogramMeta` provenance (method, budgets, items
        seen).  Not part of equality-of-approximation: two histograms with
        equal segments and error describe the same approximation whatever
        their meta says.
    """

    def __init__(
        self,
        segments: Iterable[Segment],
        error: float,
        *,
        meta: Optional[HistogramMeta] = None,
    ):
        segs = tuple(segments)
        if not segs:
            raise InvalidParameterError("a histogram needs at least one segment")
        for prev, cur in zip(segs, segs[1:]):
            if cur.beg != prev.end + 1:
                raise InvalidParameterError(
                    f"segments [{prev.beg},{prev.end}] and "
                    f"[{cur.beg},{cur.end}] are not contiguous"
                )
        if error < 0:
            raise InvalidParameterError(f"error must be non-negative, got {error}")
        self._segments = segs
        self._error = float(error)
        self._meta = meta

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The contiguous segments, in stream order."""
        return self._segments

    @property
    def meta(self) -> Optional[HistogramMeta]:
        """Provenance attached by the producing layer, or ``None``."""
        return self._meta

    def with_meta(self, meta: HistogramMeta) -> "Histogram":
        """A copy of this histogram carrying ``meta`` (segments shared)."""
        clone = Histogram.__new__(Histogram)
        clone._segments = self._segments
        clone._error = self._error
        clone._meta = meta
        return clone

    @property
    def error(self) -> float:
        """Error reported by the producing algorithm."""
        return self._error

    @property
    def beg(self) -> int:
        """First covered stream index."""
        return self._segments[0].beg

    @property
    def end(self) -> int:
        """Last covered stream index (inclusive)."""
        return self._segments[-1].end

    @property
    def coverage(self) -> int:
        """Number of stream indices covered."""
        return self.end - self.beg + 1

    def __len__(self) -> int:
        """Number of segments (buckets) in the histogram."""
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    def __getitem__(self, i: int) -> Segment:
        return self._segments[i]

    def __repr__(self) -> str:
        return (
            f"Histogram(buckets={len(self)}, range=[{self.beg}, {self.end}], "
            f"error={self._error:g})"
        )

    def value_at(self, index: int) -> float:
        """Approximate value at a covered stream index (binary search)."""
        return self.segment_at(index).value_at(index)

    def reconstruct(self) -> list[float]:
        """The full approximate series over ``[beg, end]``."""
        out: list[float] = []
        for seg in self._segments:
            if seg.is_constant:
                out.extend([seg.left] * seg.count)
            else:
                slope = seg.slope
                out.extend(
                    seg.left + k * slope for k in range(seg.count)
                )
        return out

    def max_error_against(self, values: Sequence[float]) -> float:
        """Measured L-infinity error against the original values.

        ``values[i]`` must be the stream value at absolute index
        ``beg + i``; the sequence must cover the histogram's full range.
        """
        if len(values) != self.coverage:
            raise InvalidParameterError(
                f"expected {self.coverage} values covering "
                f"[{self.beg}, {self.end}], got {len(values)}"
            )
        worst = 0.0
        offset = self.beg
        for seg in self._segments:
            if seg.is_constant:
                rep = seg.left
                for i in range(seg.beg - offset, seg.end - offset + 1):
                    diff = values[i] - rep
                    if diff < 0:
                        diff = -diff
                    if diff > worst:
                        worst = diff
            else:
                slope = seg.slope
                for k in range(seg.count):
                    diff = values[seg.beg - offset + k] - (seg.left + k * slope)
                    if diff < 0:
                        diff = -diff
                    if diff > worst:
                        worst = diff
        return worst

    def segment_at(self, index: int) -> Segment:
        """The segment covering a stream index (binary search)."""
        if not self.beg <= index <= self.end:
            raise IndexError(
                f"index {index} outside histogram range [{self.beg}, {self.end}]"
            )
        lo, hi = 0, len(self._segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._segments[mid].end < index:
                lo = mid + 1
            else:
                hi = mid
        return self._segments[lo]

    def value_bounds(self, index: int) -> tuple[float, float]:
        """Guaranteed ``(low, high)`` bounds on the true value at ``index``.

        The true stream value lies within ``error`` of the reconstruction,
        so the interval ``[estimate - error, estimate + error]`` always
        contains it -- the point-query contract a max-error summary offers
        that an L2 summary cannot.
        """
        estimate = self.value_at(index)
        return estimate - self._error, estimate + self._error

    def range_sum_bounds(self, beg: int, end: int) -> tuple[float, float]:
        """Guaranteed bounds on the sum of true values over ``[beg, end]``.

        Each true value deviates from the reconstruction by at most
        ``error``, so the sum deviates by at most ``count * error``.
        Closed form per segment (no reconstruction materialized).
        """
        if not (self.beg <= beg <= end <= self.end):
            raise InvalidParameterError(
                f"range [{beg}, {end}] outside histogram range "
                f"[{self.beg}, {self.end}]"
            )
        estimate = 0.0
        for seg in self._segments:
            if seg.end < beg or seg.beg > end:
                continue
            lo = max(seg.beg, beg)
            hi = min(seg.end, end)
            # Sum of a linear function over [lo, hi]: count * midpoint value.
            count = hi - lo + 1
            midpoint = (seg.value_at(lo) + seg.value_at(hi)) / 2.0
            estimate += count * midpoint
        slack = (end - beg + 1) * self._error
        return estimate - slack, estimate + slack

    def range_max_bounds(self, beg: int, end: int) -> tuple[float, float]:
        """Guaranteed bounds on the maximum true value over ``[beg, end]``.

        The true maximum lies within ``error`` of the reconstruction's
        maximum over the range -- the "did anything spike in this window?"
        primitive of the monitoring scenario.
        """
        if not (self.beg <= beg <= end <= self.end):
            raise InvalidParameterError(
                f"range [{beg}, {end}] outside histogram range "
                f"[{self.beg}, {self.end}]"
            )
        peak = None
        for seg in self._segments:
            if seg.end < beg or seg.beg > end:
                continue
            lo = max(seg.beg, beg)
            hi = min(seg.end, end)
            local = max(seg.value_at(lo), seg.value_at(hi))
            if peak is None or local > peak:
                peak = local
        return peak - self._error, peak + self._error

    def slice(self, beg: int, end: int) -> "Histogram":
        """Sub-histogram covering exactly ``[beg, end]`` (inclusive).

        Boundary segments are clipped along their own lines, so the
        reconstruction over the slice is unchanged and the error bound
        still holds.
        """
        if not (self.beg <= beg <= end <= self.end):
            raise InvalidParameterError(
                f"slice [{beg}, {end}] outside histogram range "
                f"[{self.beg}, {self.end}]"
            )
        kept: list[Segment] = []
        for seg in self._segments:
            if seg.end < beg or seg.beg > end:
                continue
            new_beg = max(seg.beg, beg)
            new_end = min(seg.end, end)
            kept.append(
                Segment(
                    new_beg,
                    new_end,
                    seg.value_at(new_beg),
                    seg.value_at(new_end),
                )
            )
        return Histogram(kept, self._error)

    def to_dict(self) -> dict:
        """Plain-data form for transmission or storage.

        The motivating deployments (sensor networks, StatStream-style
        fleets) ship summaries across the network; this is the wire
        format, inverse of :meth:`from_dict`.  ``meta``, when attached,
        rides along as a nested dict.
        """
        payload = {
            "error": self._error,
            "segments": [
                [seg.beg, seg.end, seg.left, seg.right]
                for seg in self._segments
            ],
        }
        if self._meta is not None:
            payload["meta"] = self._meta.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output (validated)."""
        try:
            segments = [
                Segment(beg, end, left, right)
                for beg, end, left, right in data["segments"]
            ]
            error = data["error"]
            meta = data.get("meta")
            meta = HistogramMeta(**meta) if meta is not None else None
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"malformed histogram payload: {exc}"
            ) from exc
        return cls(segments, error, meta=meta)

    def to_json(self) -> str:
        """JSON wire form (see :meth:`to_dict`)."""
        import json

        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "Histogram":
        """Inverse of :meth:`to_json`."""
        import json

        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"malformed histogram JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    def boundaries(self) -> list[int]:
        """Bucket boundary markers ``a_0 < a_1 < ... < a_k`` as in Lemma 2.

        ``boundaries()[i]`` is the last index of segment ``i`` and
        ``boundaries()[-1] == end``; the leading marker ``beg - 1`` is
        omitted.
        """
        return [seg.end for seg in self._segments]
