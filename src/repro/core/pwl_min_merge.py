"""PWL MIN-MERGE (Section 3.2, Theorem 3).

Identical control flow to the serial MIN-MERGE -- keep at most ``2B``
buckets, always merge the adjacent pair whose union has the least error --
but each bucket is a :class:`~repro.core.pwl_bucket.PwlBucket` whose error
is the optimal line-fit error of its hull, and MERGE unions the two hulls
(linear time, since the buckets are adjacent and hence x-disjoint).

With size-capped hulls (``hull_epsilon`` set) this is the paper's
(1 + eps, 2)-approximation in ``O(eps^{-1/2} B log(1/eps))`` memory; with
exact hulls (``hull_epsilon=None``) the approximation is exactly (1, 2) at
data-dependent memory.
"""

from __future__ import annotations

from math import inf
from time import perf_counter
from typing import Iterable, Optional

from repro.core.batch import MAX_WINDOW, absorbable_prefix, as_batch_array
from repro.core.histogram import Histogram
from repro.core.interface import DEFAULT_HULL_EPSILON
from repro.core.pwl_bucket import PwlBucket
from repro.core.soa import SoaPwlMinMerge
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.structures.heap import AddressableMinHeap
from repro.structures.linked_list import BucketList, BucketNode


class PwlMinMergeHistogram:
    """Streaming (1 + eps, 2)-approximate piecewise-linear histogram.

    Parameters
    ----------
    buckets:
        Target bucket count ``B``; up to ``2 * B`` working buckets.
    hull_epsilon:
        Relative width slack of the per-bucket approximate hulls (the
        ``eps`` of Theorem 3).  The unified default
        :data:`~repro.core.interface.DEFAULT_HULL_EPSILON` (``None``)
        keeps exact hulls -- the (1, 2) guarantee at data-dependent
        memory; pass a float in (0, 1) for the paper's bounded-memory
        variant (the harness registry uses ``0.1``).
    working_buckets:
        Override for the working budget (defaults to ``2 * buckets``).
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    backend:
        ``"object"`` (default) keeps the linked nodes plus addressable
        heap; ``"soa"`` runs the same algorithm on the
        structure-of-arrays control plane (:mod:`repro.core.soa`) with
        hull geometry unchanged -- bit-identical output, less per-item
        interpreter overhead.
    """

    def __init__(
        self,
        buckets: int,
        *,
        hull_epsilon: Optional[float] = DEFAULT_HULL_EPSILON,
        working_buckets: Optional[int] = None,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
        backend: str = "object",
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if working_buckets is None:
            working_buckets = 2 * buckets
        if working_buckets < 1:
            raise InvalidParameterError(
                f"working_buckets must be >= 1, got {working_buckets}"
            )
        if backend not in ("object", "soa"):
            raise InvalidParameterError(
                f"backend must be 'object' or 'soa', got {backend!r}"
            )
        self.target_buckets = buckets
        self.working_buckets = working_buckets
        self.hull_epsilon = hull_epsilon
        self.backend = backend
        self._model = memory_model
        # _soa must exist before the first ``self._n`` assignment: the
        # items-seen counter is a property that forwards into the kernel.
        self._soa = (
            SoaPwlMinMerge(working_buckets, hull_epsilon)
            if backend == "soa"
            else None
        )
        self._list = BucketList()
        self._heap = AddressableMinHeap()
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # ``_n`` (items seen) lives inside the kernel under backend="soa";
    # external collaborators (the parallel shard builder, checkpoint
    # restore) assign ``summary._n`` directly, so the facade forwards
    # both directions.
    @property
    def _n(self) -> int:
        soa = self._soa
        return soa.n if soa is not None else self.__count

    @_n.setter
    def _n(self, value: int) -> None:
        soa = self._soa
        if soa is not None:
            soa.n = value
        else:
            self.__count = value

    # -- ingestion ------------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value."""
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        merged = self._insert_plain(value)
        if observe:
            if merged:
                self._metrics.on_merge()
            self._metrics.on_insert(latency=perf_counter() - start)

    def _insert_plain(self, value) -> bool:
        """Uninstrumented insert; returns whether a merge happened."""
        soa = self._soa
        if soa is not None:
            return soa.insert(value)
        bucket = PwlBucket(self._n, value, hull_epsilon=self.hull_epsilon)
        node = self._list.append(bucket)
        if node.prev is not None:
            self._push_pair_key(node.prev)
        merged = False
        if len(self._list) > self.working_buckets:
            self._merge_min_pair()
            merged = True
        self._n += 1
        return merged

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        With exact hulls (``hull_epsilon=None``), lists and numeric
        ndarrays take a vectorized fast path: half the combined vertical
        extent bounds the tail's pair key from above, and exact hulls make
        every pair key monotone under point absorption, so a run whose
        bound stays strictly below the cheapest competing key is absorbed
        with the same per-item hull unions the scalar path performs but
        without its pair-key recomputations and heap churn.  Size-capped
        hulls fall back to the scalar loop -- compression can shrink keys,
        which voids the monotonicity certificate.  With instrumentation
        on, a batch emits one ``on_insert`` event carrying the item count.
        """
        arr = as_batch_array(values) if self.hull_epsilon is None else None
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        soa = self._soa
        chunk = soa.extend_chunk if soa is not None else self._extend_chunk
        merges = 0
        for off in range(0, n, MAX_WINDOW):
            merges += chunk(arr[off : off + MAX_WINDOW])
        if observe:
            if merges:
                self._metrics.on_merge(merges)
            self._metrics.on_insert(n, latency=perf_counter() - start)

    def _extend_chunk(self, arr) -> int:
        """Batch-ingest one chunk (exact hulls); returns merges performed."""
        lst = self._list
        cap = self.working_buckets
        n = len(arr)
        i = 0
        merges = 0
        while i < n and len(lst) < cap:
            self._insert_plain(arr[i].item())
            i += 1
        if i == n:
            return 0
        if cap == 1:
            # One working bucket: every arriving point merges into it.
            node = lst.head
            while i < n:
                node.bucket = node.bucket.merged_with(
                    PwlBucket(self._n, arr[i].item(), hull_epsilon=None)
                )
                self._n += 1
                merges += 1
                i += 1
            return merges
        heap = self._heap
        short = 0
        block = 64
        while i < n:
            if short >= 8:
                # Sticky scalar fallback, as in MinMergeHistogram.
                short = 0
                stop = min(n, i + block)
                if block < MAX_WINDOW:
                    block *= 8
                for v in arr[i:stop].tolist():
                    if self._insert_plain(v):
                        merges += 1
                i = stop
                if i == n:
                    break
            tail = lst.tail
            prev = tail.prev
            handle = prev.pair_handle
            pair_key = heap.key_of(handle)[0]
            if heap.peek_min_handle() != handle:
                static_min = heap._keys[0][0]
            else:
                slot = heap._slot_of[handle]
                static_min = inf
                for s, key in enumerate(heap._keys):
                    if s != slot and key[0] < static_min:
                        static_min = key[0]
            threshold = pair_key if pair_key < static_min else static_min
            ylo, yhi = tail.bucket.hull.y_extent()
            j, _, _ = absorbable_prefix(
                arr, arr, i, ylo, yhi, threshold, inclusive=False
            )
            run = j - i
            if run:
                for v in arr[i:j].tolist():
                    tail.bucket = tail.bucket.merged_with(
                        PwlBucket(self._n, v, hull_epsilon=None)
                    )
                    self._n += 1
                merges += run
                i = j
                self._update_pair_key(prev)
            if run < 4:
                short += 1
            else:
                short = 0
                block = 64
            if i < n:
                if self._insert_plain(arr[i].item()):
                    merges += 1
                i += 1
        return merges

    # -- aggregation hooks ---------------------------------------------------

    def adopt_buckets(self, buckets: Iterable[PwlBucket], *, count: Optional[int] = None) -> None:
        """Append pre-built PWL buckets after the current tail.

        PWL analogue of :meth:`MinMergeHistogram.adopt_buckets`: ``buckets``
        must be in stream order and start strictly after the current last
        covered index.  The bucket objects are adopted as-is (callers that
        need to keep theirs must pass copies -- hull state is shared), pair
        keys are maintained, and ``items_seen`` grows by ``count`` (default:
        the covered index span).  Call :meth:`compact` afterwards to
        re-establish the working budget.
        """
        soa = self._soa
        if soa is not None:
            soa.adopt_buckets(buckets, count)
            return
        last = self._list.tail.bucket.end if len(self._list) else None
        span = 0
        for bucket in buckets:
            if last is not None and bucket.beg <= last:
                raise InvalidParameterError(
                    f"adopted bucket [{bucket.beg}, {bucket.end}] does not "
                    f"follow the current tail (last covered index {last})"
                )
            last = bucket.end
            span += bucket.end - bucket.beg + 1
            node = self._list.append(bucket)
            if node.prev is not None:
                self._push_pair_key(node.prev)
        self._n += span if count is None else count

    def compact(self) -> int:
        """Merge cheapest adjacent pairs until the working budget holds.

        Returns the number of merges performed.
        """
        soa = self._soa
        if soa is not None:
            return soa.compact()
        merges = 0
        while len(self._list) > self.working_buckets:
            self._merge_min_pair()
            merges += 1
        return merges

    # -- queries ----------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def bucket_count(self) -> int:
        """Current number of working buckets."""
        soa = self._soa
        return soa.size if soa is not None else len(self._list)

    @property
    def error(self) -> float:
        """Current summary error (largest bucket line-fit error)."""
        soa = self._soa
        if soa is not None:
            if soa.size == 0:
                raise EmptySummaryError("no values inserted yet")
            return soa.error()
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        return max(node.bucket.error for node in self._list)

    def buckets_snapshot(self) -> list[PwlBucket]:
        """The current buckets, in stream order (shared, do not mutate)."""
        soa = self._soa
        if soa is not None:
            return soa.buckets_snapshot()
        return self._list.buckets()

    def histogram(self) -> Histogram:
        """The current piecewise-linear approximation."""
        if self.bucket_count == 0:
            raise EmptySummaryError("no values inserted yet")
        segments = [bucket.segment() for bucket in self.buckets_snapshot()]
        return Histogram(segments, self.error)

    def memory_bytes(self) -> int:
        """Accounted memory: bucket headers, hull vertices, heap entries.

        Under ``backend="soa"`` the heap term counts the lazy heap's
        actual entries (stale included); compaction bounds it at a small
        multiple of the pair count.
        """
        soa = self._soa
        if soa is not None:
            total = self._model.heap_entries(len(soa.heap))
            for bucket in soa.buckets_snapshot():
                total += bucket.memory_bytes(self._model)
            return total
        total = self._model.heap_entries(len(self._heap))
        for node in self._list:
            total += node.bucket.memory_bytes(self._model)
        return total

    def check_min_merge_property(self) -> None:
        """PWL analogue of the serial min-merge invariant (tests).

        With exact hulls the property is exact; with approximate hulls it
        holds up to the hull width slack, so the check allows a
        ``(1 - hull_epsilon)`` margin.
        """
        if self.bucket_count < 2:
            return
        slack = 1.0 if self.hull_epsilon is None else 1.0 - self.hull_epsilon
        current = self.error
        snapshot = self.buckets_snapshot()
        for left, right in zip(snapshot, snapshot[1:]):
            pair_error = left.merge_error_with(right)
            if pair_error >= slack * current - 1e-9:
                continue
            raise AssertionError(
                f"PWL min-merge property violated: pair at [{left.beg},"
                f"{right.end}] merges with error {pair_error} "
                f"< {slack} * err(S) = {slack * current}"
            )

    # -- internals -----------------------------------------------------------------

    def _push_pair_key(self, left: BucketNode) -> None:
        # Tuple key (error, beg): ties break on the leftmost pair so FINDMIN
        # is a pure function of the bucket list, independent of heap layout
        # history (see MinMergeHistogram._push_pair_key).
        key = left.bucket.merge_error_with(left.next.bucket)
        left.pair_handle = self._heap.push((key, left.bucket.beg), left)

    def _update_pair_key(self, left: BucketNode) -> None:
        # In-place key refresh: bit-identical to remove + push (keys are
        # unique (error, beg) tuples) at half the heap traffic -- see
        # MinMergeHistogram._update_pair_key.
        key = left.bucket.merge_error_with(left.next.bucket)
        self._heap.update(left.pair_handle, (key, left.bucket.beg))

    def _merge_min_pair(self) -> None:
        # Same entry-recycling merge as MinMergeHistogram._merge_min_pair.
        heap = self._heap
        _key, left = heap.pop_min()
        left.pair_handle = None
        right = left.next
        right_handle = right.pair_handle
        left.bucket = left.bucket.merged_with(right.bucket)
        self._list.remove(right)
        if left.prev is not None:
            self._update_pair_key(left.prev)
        if left.next is not None:
            key = left.bucket.merge_error_with(left.next.bucket)
            heap.update(right_handle, (key, left.bucket.beg), item=left)
            left.pair_handle = right_handle
        elif right_handle is not None:  # pragma: no cover - defensive
            heap.remove(right_handle)
