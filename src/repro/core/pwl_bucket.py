"""Piecewise-linear histogram buckets (Section 3.1).

A PWL bucket approximates the stream values of its index range by the best
L-infinity line.  That optimum depends only on the convex hull of the
bucket's points ``(index, value)``, so the bucket stores its hull -- exact
(:class:`~repro.geometry.convex_hull.StreamingHull`, amortized O(1) per
point because indices increase) or size-capped
(:class:`~repro.geometry.kernel.ApproximateHull`, the paper's Chan-coreset
role).  The bucket's error is half the hull's vertical width; the fitted
line bisects the optimal strip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.histogram import Segment
from repro.exceptions import InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.fit import LineFit, best_line_fit
from repro.geometry.kernel import ApproximateHull
from repro.memory.model import DEFAULT_MODEL, MemoryModel

HullType = Union[StreamingHull, ApproximateHull]


def _new_hull(hull_epsilon: Optional[float]) -> HullType:
    if hull_epsilon is None:
        return StreamingHull()
    return ApproximateHull(hull_epsilon)


class PwlBucket:
    """One PWL bucket: an index range plus the hull of its points.

    Parameters
    ----------
    index, value:
        The first stream item the bucket covers.
    hull_epsilon:
        ``None`` keeps the exact hull; a value in (0, 1) caps the hull at
        the directional-kernel size for that epsilon (Theorem 3/4 memory).
    """

    __slots__ = ("beg", "end", "hull", "_cached_error")

    def __init__(self, index: int, value, *, hull_epsilon: Optional[float] = None):
        self.beg = index
        self.end = index
        self.hull: HullType = _new_hull(hull_epsilon)
        self.hull.add(index, value)
        self._cached_error: Optional[float] = 0.0

    @property
    def count(self) -> int:
        """Number of stream items covered."""
        return self.end - self.beg + 1

    @property
    def error(self) -> float:
        """Half the vertical width of the bucket's hull."""
        if self._cached_error is None:
            self._cached_error = best_line_fit(self.hull).error
        return self._cached_error

    def fit(self) -> LineFit:
        """The optimal (Chebyshev) line for the bucket."""
        return best_line_fit(self.hull)

    def segment(self) -> Segment:
        """The bucket rendered as a histogram segment (beg/end values)."""
        line = self.fit()
        return Segment(
            self.beg, self.end, line.value_at(self.beg), line.value_at(self.end)
        )

    def add(self, value) -> None:
        """Absorb the next stream value (at index ``end + 1``)."""
        self.end += 1
        self.hull.add(self.end, value)
        self._cached_error = None
        if isinstance(self.hull, ApproximateHull):
            self.hull.maybe_compress()

    def try_add(self, value, max_error: float) -> bool:
        """GREEDY-INSERT trial: absorb ``value`` unless error would exceed.

        Returns True (and commits) when the bucket's error stays within
        ``max_error``; otherwise rolls the hull back and returns False.
        """
        self.end += 1
        self.hull.add(self.end, value)
        new_error = best_line_fit(self.hull).error
        if new_error > max_error:
            self.hull.undo_last_add()
            self.end -= 1
            return False
        self._cached_error = new_error
        if isinstance(self.hull, ApproximateHull):
            self.hull.maybe_compress()
        return True

    def to_state(self) -> dict:
        """JSON-safe snapshot: index range plus the tagged hull state."""
        if isinstance(self.hull, ApproximateHull):
            hull_state = {"kind": "approx", **self.hull.to_state()}
        else:
            hull_state = {"kind": "exact", **self.hull.to_state()}
        return {"beg": self.beg, "end": self.end, "hull": hull_state}

    @classmethod
    def from_state(cls, state: dict) -> "PwlBucket":
        """Rebuild from :meth:`to_state` output (exact round trip).

        The cached error is left unset; the next :attr:`error` read
        recomputes it from the restored hull, which is deterministic, so a
        resumed run stays bit-identical to an uninterrupted one.
        """
        bucket = object.__new__(cls)
        bucket.beg = int(state["beg"])
        bucket.end = int(state["end"])
        hull_state = state["hull"]
        if hull_state["kind"] == "approx":
            bucket.hull = ApproximateHull.from_state(hull_state)
        else:
            bucket.hull = StreamingHull.from_state(hull_state)
        bucket._cached_error = None
        return bucket

    def merged_with(self, other: "PwlBucket") -> "PwlBucket":
        """MERGE for PWL MIN-MERGE: union of two adjacent buckets' hulls."""
        if other.beg != self.end + 1:
            raise InvalidParameterError(
                f"buckets [{self.beg},{self.end}] and "
                f"[{other.beg},{other.end}] are not adjacent"
            )
        merged = object.__new__(PwlBucket)
        merged.beg = self.beg
        merged.end = other.end
        merged.hull = self.hull.union(other.hull)
        merged._cached_error = None
        return merged

    def merge_error_with(self, other: "PwlBucket") -> float:
        """Error of the union bucket (builds the merged hull, O(h))."""
        return best_line_fit(self.hull.union(other.hull)).error

    def memory_bytes(self, model: MemoryModel = DEFAULT_MODEL) -> int:
        """Accounted memory: header plus stored hull chain entries."""
        return model.pwl_headers(1) + model.hull_vertices(self.hull.stored_entries)

    def __repr__(self) -> str:
        return (
            f"PwlBucket(beg={self.beg}, end={self.end}, "
            f"hull_vertices={self.hull.vertex_count})"
        )


@dataclass(frozen=True)
class ClosedPwlBucket:
    """A finished PWL bucket stored as its fitted segment (Theorem 4).

    MIN-INCREMENT only ever extends its *open* bucket, so closed buckets
    drop their hulls and keep the 4-word tuple ``(beg, end, left, right)``
    the paper describes, plus the realized error for reporting.
    """

    beg: int
    end: int
    left: float
    right: float
    error: float

    def segment(self) -> Segment:
        """The stored fitted line as a histogram segment."""
        return Segment(self.beg, self.end, self.left, self.right)

    @classmethod
    def from_bucket(cls, bucket: PwlBucket) -> "ClosedPwlBucket":
        """Freeze an open bucket: fit its line, drop its hull."""
        line = bucket.fit()
        return cls(
            beg=bucket.beg,
            end=bucket.end,
            left=line.value_at(bucket.beg),
            right=line.value_at(bucket.end),
            error=line.error,
        )
