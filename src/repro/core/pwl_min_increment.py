"""PWL MIN-INCREMENT (Section 3.2, Theorem 4).

Same ladder-of-greedy-summaries skeleton as the serial MIN-INCREMENT, with
two PWL-specific twists straight from the paper:

* the *open* bucket of each summary maintains a convex hull (exact or
  size-capped) so arriving points can be tested against the target error --
  the error of a PWL bucket is monotone under point insertion (the hull
  only grows), so the greedy dual optimality argument of Lemma 2 carries
  over unchanged;
* a *closed* bucket immediately drops its hull and keeps only the fitted
  4-word segment ``(beg, end, left, right)``, which is what keeps the space
  at ``O(eps^-1 B log U)`` for the buckets plus one hull's worth of
  ``O(eps^{-3/2} log(1/eps) log U)`` across the ladder.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

import numpy as np

from repro.core.batch import MAX_WINDOW, as_batch_array, pwl_greedy_chunk
from repro.core.error_ladder import ErrorLadder
from repro.core.histogram import Histogram
from repro.core.interface import DEFAULT_HULL_EPSILON
from repro.core.pwl_bucket import ClosedPwlBucket, PwlBucket
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics


class PwlGreedyInsertSummary:
    """Minimum-bucket PWL approximation for one target error."""

    __slots__ = ("target_error", "hull_epsilon", "closed", "open", "_next_index")

    def __init__(
        self,
        target_error: float,
        *,
        hull_epsilon: Optional[float] = DEFAULT_HULL_EPSILON,
        start_index: int = 0,
    ):
        if target_error < 0:
            raise InvalidParameterError(
                f"target_error must be >= 0, got {target_error}"
            )
        self.target_error = target_error
        self.hull_epsilon = hull_epsilon
        self.closed: list[ClosedPwlBucket] = []
        self.open: Optional[PwlBucket] = None
        self._next_index = start_index

    def insert(self, value) -> None:
        """GREEDY-INSERT one value against the PWL bucket error."""
        if self.open is None:
            self.open = PwlBucket(
                self._next_index, value, hull_epsilon=self.hull_epsilon
            )
        elif not self.open.try_add(value, self.target_error):
            self.closed.append(ClosedPwlBucket.from_bucket(self.open))
            self.open = PwlBucket(
                self._next_index, value, hull_epsilon=self.hull_epsilon
            )
        self._next_index += 1

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays route through the vectorized
        hull-point batching kernel; the hull mutations are identical to
        the scalar loop.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        for off in range(0, len(arr), MAX_WINDOW):
            chunk = arr[off : off + MAX_WINDOW]
            self.open, _ = pwl_greedy_chunk(
                chunk,
                self._next_index,
                self.open,
                self.closed.append,
                self.target_error,
                self.hull_epsilon,
            )
            self._next_index += len(chunk)

    @property
    def bucket_count(self) -> int:
        """Buckets used so far, counting the open one."""
        return len(self.closed) + (1 if self.open is not None else 0)

    @property
    def items_seen(self) -> int:
        """Number of stream values processed (relative to start_index)."""
        first = self.closed[0].beg if self.closed else (
            self.open.beg if self.open is not None else self._next_index
        )
        return self._next_index - first

    @property
    def metrics(self):
        """Always ``None``: leaf summaries are accounted by their parent."""
        return None

    @property
    def error(self) -> float:
        """Largest bucket error so far (always <= target_error)."""
        if self.bucket_count == 0:
            raise EmptySummaryError("no values inserted yet")
        worst = 0.0
        for bucket in self.closed:
            if bucket.error > worst:
                worst = bucket.error
        if self.open is not None and self.open.error > worst:
            worst = self.open.error
        return worst

    def histogram(self) -> Histogram:
        """The current piecewise-linear approximation."""
        if self.bucket_count == 0:
            raise EmptySummaryError("no values inserted yet")
        segments = [bucket.segment() for bucket in self.closed]
        if self.open is not None:
            segments.append(self.open.segment())
        return Histogram(segments, self.error)

    def memory_bytes(self, model: MemoryModel = DEFAULT_MODEL) -> int:
        """Closed buckets at 4 words each plus the open bucket's hull."""
        total = model.buckets(len(self.closed))
        if self.open is not None:
            total += self.open.memory_bytes(model)
        return total


class PwlMinIncrementHistogram:
    """Streaming (1 + eps, 1)-approximate piecewise-linear histogram.

    Parameters
    ----------
    buckets:
        Target bucket count ``B``.
    epsilon:
        Ladder approximation parameter in (0, 1).
    universe:
        Size ``U`` of the integer value domain ``[0, U)``.
    hull_epsilon:
        Width slack of the open buckets' approximate hulls; the unified
        default :data:`~repro.core.interface.DEFAULT_HULL_EPSILON`
        (``None``) keeps exact hulls.  When set, the effective
        approximation factor composes to roughly
        ``(1 + epsilon) / (1 - hull_epsilon)``.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        *,
        hull_epsilon: Optional[float] = DEFAULT_HULL_EPSILON,
        include_zero_level: bool = True,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        self.target_buckets = buckets
        self.epsilon = epsilon
        self.universe = universe
        self.hull_epsilon = hull_epsilon
        self.ladder = ErrorLadder(
            epsilon, universe, include_zero_level=include_zero_level
        )
        self._model = memory_model
        self._summaries = [
            PwlGreedyInsertSummary(level, hull_epsilon=hull_epsilon)
            for level in self.ladder
        ]
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion -----------------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value."""
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        best = self._summaries[0]
        best_buckets = best.bucket_count if observe else 0
        self._n += 1
        limit = self.target_buckets
        survivors = []
        dead = 0
        for summary in self._summaries:
            summary.insert(value)
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
            else:
                dead += 1
        self._summaries = survivors
        if observe:
            if dead:
                self._metrics.on_promotion(dead)
            if survivors[0] is best and best.bucket_count == best_buckets:
                self._metrics.on_merge()
            self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays route every surviving ladder level
        through the vectorized hull-batching kernel (dead levels stop
        early); the final state matches the scalar loop exactly.  With
        instrumentation on, the batch emits one ``on_insert`` event with
        the item count.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        bad = (arr < 0) | (arr >= self.universe)
        if bad.any():
            offender = int(np.argmax(bad))
            if offender:
                self.extend(values[:offender])
            v = arr[offender].item()
            raise DomainError(
                f"value {v!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        best = self._summaries[0]
        best_buckets = best.bucket_count if observe else 0
        dead = 0
        limit = self.target_buckets
        for off in range(0, n, MAX_WINDOW):
            chunk = arr[off : off + MAX_WINDOW]
            last = self._summaries[-1]
            survivors = []
            for summary in self._summaries:
                is_last = summary is last
                summary.open, consumed = pwl_greedy_chunk(
                    chunk,
                    summary._next_index,
                    summary.open,
                    summary.closed.append,
                    summary.target_error,
                    summary.hull_epsilon,
                    stop_after=None if is_last else limit,
                    bucket_count=summary.bucket_count,
                )
                summary._next_index += consumed
                if summary.bucket_count <= limit or is_last:
                    survivors.append(summary)
                else:
                    dead += 1
            self._summaries = survivors
            self._n += len(chunk)
        if observe:
            if dead:
                self._metrics.on_promotion(dead)
            if self._summaries[0] is best:
                absorbed = n - (best.bucket_count - best_buckets)
                if absorbed > 0:
                    self._metrics.on_merge(absorbed)
            self._metrics.on_insert(n, latency=perf_counter() - start)

    # -- queries --------------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def alive_levels(self) -> list[float]:
        """Target errors whose summaries still fit in ``B`` buckets."""
        return [s.target_error for s in self._summaries]

    def best_summary(self) -> PwlGreedyInsertSummary:
        """The surviving summary with the smallest target error."""
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        return self._summaries[0]

    def histogram(self) -> Histogram:
        """The (1 + eps, 1)-approximate PWL histogram."""
        return self.best_summary().histogram()

    @property
    def error(self) -> float:
        """Actual error of the answer histogram."""
        return self.best_summary().error

    def memory_bytes(self) -> int:
        """Accounted memory across the surviving summaries."""
        total = sum(s.memory_bytes(self._model) for s in self._summaries)
        total += self._model.ladder_entries(len(self._summaries))
        return total
