"""Sliding-window piecewise-linear MIN-INCREMENT (extension).

The paper stops at serial sliding-window histograms (Section 4.1), but its
two ingredients compose: the windowed GREEDY-INSERT with expiry and trim
works verbatim with PWL buckets, because

* closed PWL buckets are stored as fitted segments (Theorem 4's trick), so
  *expiring* or *trimming* a whole bucket is the same O(1) deque pop as in
  the serial case -- no hull surgery is ever needed at the old end;
* the open bucket only ever grows at the new end, exactly what the
  streaming hull supports.

The guarantee composes the same way as Theorem 5: at most ``B + 1``
buckets covering the window with error within ``(1 + eps)`` of the
window's optimal ``B``-bucket PWL error (up to the ladder's base
granularity -- PWL optima are real-valued; see DESIGN.md item 5).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Iterable, Optional

import numpy as np

from repro.core.batch import MAX_WINDOW, as_batch_array, pwl_greedy_chunk
from repro.core.error_ladder import ErrorLadder
from repro.core.histogram import Histogram, Segment
from repro.core.interface import DEFAULT_HULL_EPSILON
from repro.core.pwl_bucket import ClosedPwlBucket, PwlBucket
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics


class _WindowedPwlGreedySummary:
    """Windowed PWL GREEDY-INSERT with the Section 4.1 expiry/trim policy."""

    __slots__ = ("target_error", "hull_epsilon", "closed", "open")

    def __init__(self, target_error: float, hull_epsilon: Optional[float]):
        self.target_error = target_error
        self.hull_epsilon = hull_epsilon
        self.closed: Deque[ClosedPwlBucket] = deque()
        self.open: Optional[PwlBucket] = None

    def insert(self, index: int, value) -> None:
        if self.open is None:
            self.open = PwlBucket(index, value, hull_epsilon=self.hull_epsilon)
        elif not self.open.try_add(value, self.target_error):
            self.closed.append(ClosedPwlBucket.from_bucket(self.open))
            self.open = PwlBucket(index, value, hull_epsilon=self.hull_epsilon)

    def expire(self, window_start: int) -> int:
        dropped = 0
        while self.closed and self.closed[0].end < window_start:
            self.closed.popleft()
            dropped += 1
        return dropped

    def trim_to(self, max_buckets: int) -> int:
        dropped = 0
        while self.bucket_count > max_buckets and self.closed:
            self.closed.popleft()
            dropped += 1
        return dropped

    @property
    def bucket_count(self) -> int:
        return len(self.closed) + (1 if self.open is not None else 0)

    def oldest_index(self) -> Optional[int]:
        if self.closed:
            return self.closed[0].beg
        if self.open is not None:
            return self.open.beg
        return None

    def segments_clipped(self, window_start: int) -> tuple[list[Segment], float]:
        """Window-clipped segments plus the worst bucket error."""
        segments: list[Segment] = []
        worst = 0.0
        for bucket in self.closed:
            seg = bucket.segment()
            if seg.beg < window_start:
                seg = Segment(
                    window_start,
                    seg.end,
                    seg.value_at(window_start),
                    seg.right,
                )
            segments.append(seg)
            if bucket.error > worst:
                worst = bucket.error
        if self.open is not None:
            seg = self.open.segment()
            if seg.beg < window_start:
                seg = Segment(
                    window_start, seg.end, seg.value_at(window_start), seg.right
                )
            segments.append(seg)
            if self.open.error > worst:
                worst = self.open.error
        return segments, worst


class SlidingWindowPwlMinIncrement:
    """(1 + eps, 1 + 1/B) piecewise-linear histogram over a sliding window.

    Parameters mirror :class:`~repro.core.sliding_window.SlidingWindowMinIncrement`
    with the PWL-specific ``hull_epsilon`` of the open buckets (unified
    default :data:`~repro.core.interface.DEFAULT_HULL_EPSILON`) and the
    opt-in ``metrics`` instrumentation hook.
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        window: int,
        *,
        hull_epsilon: Optional[float] = DEFAULT_HULL_EPSILON,
        include_zero_level: bool = True,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self.target_buckets = buckets
        self.window = window
        self.universe = universe
        self.epsilon = epsilon
        self.hull_epsilon = hull_epsilon
        self.ladder = ErrorLadder(
            epsilon, universe, include_zero_level=include_zero_level
        )
        self._model = memory_model
        self._summaries = [
            _WindowedPwlGreedySummary(level, hull_epsilon) for level in self.ladder
        ]
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion ---------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value."""
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        index = self._n
        self._n += 1
        window_start = self.window_start
        max_buckets = self.target_buckets + 1
        m = self._metrics
        if m is None:
            for summary in self._summaries:
                summary.insert(index, value)
                summary.expire(window_start)
                summary.trim_to(max_buckets)
            return
        start = perf_counter()
        evicted = 0
        for summary in self._summaries:
            summary.insert(index, value)
            evicted += summary.expire(window_start)
            evicted += summary.trim_to(max_buckets)
        if evicted:
            m.on_evict(evicted)
        m.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Same vectorized schedule as
        :meth:`SlidingWindowMinIncrement.extend`: per-level hull batching
        over each chunk, then one expiry/trim pass at the chunk's final
        window start -- exactly the per-item surviving suffix.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        bad = (arr < 0) | (arr >= self.universe)
        if bad.any():
            offender = int(np.argmax(bad))
            if offender:
                self.extend(values[:offender])
            v = arr[offender].item()
            raise DomainError(
                f"value {v!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        max_buckets = self.target_buckets + 1
        evicted = 0
        for off in range(0, n, MAX_WINDOW):
            chunk = arr[off : off + MAX_WINDOW]
            base = self._n
            self._n += len(chunk)
            window_start = self.window_start
            for summary in self._summaries:
                summary.open, _ = pwl_greedy_chunk(
                    chunk,
                    base,
                    summary.open,
                    summary.closed.append,
                    summary.target_error,
                    summary.hull_epsilon,
                )
                evicted += summary.expire(window_start)
                evicted += summary.trim_to(max_buckets)
        if observe:
            if evicted:
                self._metrics.on_evict(evicted)
            self._metrics.on_insert(n, latency=perf_counter() - start)

    # -- queries -------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def window_start(self) -> int:
        """First stream index inside the current window."""
        return max(0, self._n - self.window)

    def best_summary(self) -> _WindowedPwlGreedySummary:
        """Smallest-error summary that fully covers the current window."""
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        window_start = self.window_start
        for summary in self._summaries:
            oldest = summary.oldest_index()
            if oldest is not None and oldest <= window_start:
                return summary
        raise EmptySummaryError(
            "no summary covers the current window"
        )  # pragma: no cover

    def histogram(self) -> Histogram:
        """PWL histogram of the last ``w`` values, clipped to the window."""
        summary = self.best_summary()
        segments, worst = summary.segments_clipped(self.window_start)
        return Histogram(segments, worst)

    @property
    def error(self) -> float:
        """Error of the current window's answer histogram."""
        return self.histogram().error

    def memory_bytes(self) -> int:
        """Accounted memory: per-level buckets, open hulls, ladder."""
        total = self._model.ladder_entries(len(self._summaries))
        for summary in self._summaries:
            total += self._model.buckets(len(summary.closed))
            if summary.open is not None:
                total += summary.open.memory_bytes(self._model)
        return total
