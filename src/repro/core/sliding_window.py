"""Sliding-window MIN-INCREMENT (Section 4.1, Theorem 5).

The sliding-window model asks for a histogram of only the most recent ``w``
stream values.  Lemma 3 shows no sublinear-memory algorithm can match the
optimal B-bucket error exactly, so the paper settles for
``(1 + eps, 1 + 1/B)``: at most ``B + 1`` buckets with error within
``(1 + eps)`` of the optimal B-bucket error for the current window.

Mechanics, per target error ``e_i`` of the ladder:

* GREEDY-INSERT as usual at the right end of the window;
* *expire* any bucket that lies entirely outside the window;
* if the summary exceeds ``B + 1`` buckets, *trim* the oldest bucket even
  though it is still inside the window (Lemma 4 justifies this: the window's
  optimal B-bucket error must already exceed ``e_i``, so the summary only
  needs to stay useful for future windows).

A summary whose oldest bucket no longer reaches back to the window start is
*incomplete* (it was trimmed recently) and cannot answer for the current
window; at query time we use the smallest-error summary that covers the
whole window with at most ``B + 1`` buckets.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Iterable, Optional

import numpy as np

from repro.core.batch import MAX_WINDOW, as_batch_array, greedy_chunk
from repro.core.bucket import Bucket
from repro.core.error_ladder import ErrorLadder
from repro.core.histogram import Histogram, Segment
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics


class _WindowedGreedySummary:
    """GREEDY-INSERT with the expiry and trim policies of Section 4.1."""

    __slots__ = ("target_error", "closed", "open")

    def __init__(self, target_error: float):
        self.target_error = target_error
        self.closed: Deque[Bucket] = deque()
        self.open: Optional[Bucket] = None

    def insert(self, index: int, value) -> None:
        if self.open is None:
            self.open = Bucket.singleton(index, value)
        elif self.open.would_extend_error(value) <= self.target_error:
            self.open.extend(value)
        else:
            self.closed.append(self.open)
            self.open = Bucket.singleton(index, value)

    def expire(self, window_start: int) -> int:
        """Drop buckets entirely outside the window (end < window_start).

        Returns the number of buckets dropped.
        """
        dropped = 0
        while self.closed and self.closed[0].end < window_start:
            self.closed.popleft()
            dropped += 1
        # The open bucket always ends at the newest item, inside the window.
        return dropped

    def trim_to(self, max_buckets: int) -> int:
        """Drop oldest buckets until at most ``max_buckets`` remain.

        Returns the number of buckets dropped.
        """
        dropped = 0
        while self.bucket_count > max_buckets and self.closed:
            self.closed.popleft()
            dropped += 1
        return dropped

    @property
    def bucket_count(self) -> int:
        return len(self.closed) + (1 if self.open is not None else 0)

    def oldest_index(self) -> Optional[int]:
        if self.closed:
            return self.closed[0].beg
        if self.open is not None:
            return self.open.beg
        return None

    def buckets_snapshot(self) -> list[Bucket]:
        out = [Bucket(b.beg, b.end, b.min, b.max) for b in self.closed]
        if self.open is not None:
            b = self.open
            out.append(Bucket(b.beg, b.end, b.min, b.max))
        return out


class SlidingWindowMinIncrement:
    """(1 + eps, 1 + 1/B)-approximate histogram over a sliding window.

    Parameters
    ----------
    buckets:
        Target bucket count ``B``; answers use at most ``B + 1`` buckets.
    epsilon:
        Approximation parameter in (0, 1).
    universe:
        Size ``U`` of the integer value domain ``[0, U)``.
    window:
        Window length ``w >= 1``: queries describe the last ``w`` values.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).  Expired and trimmed buckets are
        counted as evictions.
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        window: int,
        *,
        include_zero_level: bool = True,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self.target_buckets = buckets
        self.window = window
        self.universe = universe
        self.epsilon = epsilon
        self.ladder = ErrorLadder(
            epsilon, universe, include_zero_level=include_zero_level
        )
        self._model = memory_model
        self._summaries = [
            _WindowedGreedySummary(level) for level in self.ladder
        ]
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)

    # -- ingestion ---------------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value."""
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )
        index = self._n
        self._n += 1
        window_start = self.window_start
        max_buckets = self.target_buckets + 1
        m = self._metrics
        if m is None:
            for summary in self._summaries:
                summary.insert(index, value)
                summary.expire(window_start)
                summary.trim_to(max_buckets)
            return
        start = perf_counter()
        evicted = 0
        for summary in self._summaries:
            summary.insert(index, value)
            evicted += summary.expire(window_start)
            evicted += summary.trim_to(max_buckets)
        if evicted:
            m.on_evict(evicted)
        m.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays take a vectorized path: each chunk is
        greedily ingested per level, then expiry and trim run once against
        the chunk's final window start.  Greedy boundaries depend only on
        the open bucket and both policies drop from the old end, so the
        surviving suffix matches the per-item schedule exactly.  With
        instrumentation on, a batch emits one ``on_insert`` event with the
        item count and aggregated eviction counts.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        bad = (arr < 0) | (arr >= self.universe)
        if bad.any():
            offender = int(np.argmax(bad))
            if offender:
                self.extend(values[:offender])
            v = arr[offender].item()
            raise DomainError(
                f"value {v!r} outside universe [0, {self.universe})"
            )
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        max_buckets = self.target_buckets + 1
        evicted = 0
        for off in range(0, n, MAX_WINDOW):
            chunk = arr[off : off + MAX_WINDOW]
            base = self._n
            self._n += len(chunk)
            window_start = self.window_start
            for summary in self._summaries:
                summary.open, _ = greedy_chunk(
                    chunk,
                    base,
                    summary.open,
                    summary.closed.append,
                    summary.target_error,
                )
                evicted += summary.expire(window_start)
                evicted += summary.trim_to(max_buckets)
        if observe:
            if evicted:
                self._metrics.on_evict(evicted)
            self._metrics.on_insert(n, latency=perf_counter() - start)

    # -- queries --------------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def window_start(self) -> int:
        """First stream index inside the current window."""
        return max(0, self._n - self.window)

    def best_summary(self) -> _WindowedGreedySummary:
        """Smallest-error summary that fully covers the current window."""
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        window_start = self.window_start
        for summary in self._summaries:
            oldest = summary.oldest_index()
            if oldest is not None and oldest <= window_start:
                return summary
        # The coarsest level is never trimmed (it always needs one bucket),
        # so this is unreachable; guard for safety.
        raise EmptySummaryError(
            "no summary covers the current window"
        )  # pragma: no cover

    def histogram(self) -> Histogram:
        """Histogram of the last ``w`` values, clipped to the window.

        The first bucket may have been opened before the window started; its
        index range is clipped, while its min/max (a superset of the window
        portion) still bound the error, preserving the ``(1 + eps)``
        guarantee.
        """
        summary = self.best_summary()
        window_start = self.window_start
        segments = []
        worst = 0.0
        for bucket in summary.buckets_snapshot():
            beg = max(bucket.beg, window_start)
            segments.append(
                Segment(beg, bucket.end, bucket.representative, bucket.representative)
            )
            if bucket.error > worst:
                worst = bucket.error
        return Histogram(segments, worst)

    @property
    def error(self) -> float:
        """Error of the current window's answer histogram."""
        return self.histogram().error

    def memory_bytes(self) -> int:
        """Accounted memory: all per-level buckets plus ladder entries."""
        total = 0
        for summary in self._summaries:
            total += self._model.buckets(len(summary.closed))
            if summary.open is not None:
                total += self._model.open_buckets(1)
        total += self._model.ladder_entries(len(self._summaries))
        return total
