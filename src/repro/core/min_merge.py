"""The MIN-MERGE algorithm (Section 2.1, Algorithm 1).

MIN-MERGE maintains at most ``2B`` buckets.  Every arriving value first gets
its own singleton bucket; when the budget is exceeded, the two *adjacent*
buckets whose union has the smallest error are merged.  Theorem 1: the
resulting 2B-bucket histogram has error at most that of the *optimal*
B-bucket histogram -- a (1, 2)-approximation -- using O(B) memory and
O(log B) time per item.

FINDMIN is implemented exactly as Section 2.1.1 prescribes: an addressable
min-heap holds one key per adjacent pair (the error of merging that pair);
a merge removes up to three keys and inserts up to two.

The analysis rests on the *min-merge property*: at all times, merging any
two adjacent buckets would produce error at least ``err(S)``.
:meth:`MinMergeHistogram.check_min_merge_property` verifies it directly and
is exercised by the property-based tests.
"""

from __future__ import annotations

from math import inf
from time import perf_counter
from typing import Iterable, Optional

import numpy as np

from repro.core.batch import MAX_WINDOW, as_batch_array
from repro.core.bucket import Bucket
from repro.core.histogram import Histogram, Segment
from repro.core.soa import SoaMinMerge
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics
from repro.structures.heap import AddressableMinHeap
from repro.structures.linked_list import BucketList, BucketNode


class MinMergeHistogram:
    """Streaming (1, 2)-approximate L-infinity histogram.

    Parameters
    ----------
    buckets:
        The target bucket count ``B``.  The summary keeps up to ``2 * B``
        working buckets and guarantees error no worse than the optimal
        ``B``-bucket histogram (Theorem 1).
    working_buckets:
        Override for the working budget (defaults to ``2 * buckets``).
        Exposed for the ablation benchmarks; values below ``2 * buckets``
        void the (1, 2) guarantee.
    findmin:
        ``"heap"`` (default) uses the addressable min-heap of
        Section 2.1.1 for O(log B) updates; ``"linear"`` scans the bucket
        list in O(B) per item -- the variant the paper's own experiments
        ran (footnote 4).  Results are identical; only speed and the heap's
        O(B) extra words differ.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).
    backend:
        ``"object"`` (default) keeps the linked ``Bucket`` nodes and the
        addressable heap of the original implementation; ``"soa"`` runs
        the same algorithm on the structure-of-arrays kernel
        (:mod:`repro.core.soa`) -- flat columns plus a lazy-deletion C
        heap, several times faster per item and bit-identical in every
        observable (buckets, error, histogram, checkpoints, merges).
        ``"soa"`` requires ``findmin="heap"``.

    Examples
    --------
    >>> h = MinMergeHistogram(buckets=2)
    >>> for v in [1, 1, 1, 10, 10, 10]:
    ...     h.insert(v)
    >>> hist = h.histogram()
    >>> hist.error
    0.0
    """

    def __init__(
        self,
        buckets: int,
        *,
        working_buckets: Optional[int] = None,
        findmin: str = "heap",
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
        backend: str = "object",
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if working_buckets is None:
            working_buckets = 2 * buckets
        if working_buckets < 1:
            raise InvalidParameterError(
                f"working_buckets must be >= 1, got {working_buckets}"
            )
        if findmin not in ("heap", "linear"):
            raise InvalidParameterError(
                f"findmin must be 'heap' or 'linear', got {findmin!r}"
            )
        if backend not in ("object", "soa"):
            raise InvalidParameterError(
                f"backend must be 'object' or 'soa', got {backend!r}"
            )
        if backend == "soa" and findmin != "heap":
            raise InvalidParameterError(
                "backend='soa' implements FINDMIN with its lazy heap; "
                "combine findmin='linear' with backend='object'"
            )
        self.target_buckets = buckets
        self.working_buckets = working_buckets
        self.findmin = findmin
        self.backend = backend
        self._model = memory_model
        # _soa must exist before the first ``self._n`` assignment: the
        # items-seen counter is a property that forwards into the kernel.
        self._soa = SoaMinMerge(working_buckets) if backend == "soa" else None
        self._list = BucketList()
        self._heap = AddressableMinHeap()
        self._n = 0
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)
            # Route ingestion through the instrumented twin.  Binding on
            # the instance keeps the uninstrumented insert() below exactly
            # the seed implementation -- zero overhead when disabled.
            self.insert = self._insert_observed
        elif self._soa is not None:
            # Uninstrumented SoA ingest skips the facade frame entirely:
            # the kernel's insert is the whole per-item path.
            self.insert = self._soa.insert

    # ``_n`` (items seen) lives inside the kernel under backend="soa" so
    # the hot loops touch a single counter; external collaborators (the
    # parallel shard builder, checkpoint restore) assign ``summary._n``
    # directly, so the facade forwards both directions.
    @property
    def _n(self) -> int:
        soa = self._soa
        return soa.n if soa is not None else self.__count

    @_n.setter
    def _n(self, value: int) -> None:
        soa = self._soa
        if soa is not None:
            soa.n = value
        else:
            self.__count = value

    # -- stream ingestion --------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value (Algorithm 1)."""
        soa = self._soa
        if soa is not None:
            soa.insert(value)
            return
        node = self._list.append(Bucket.singleton(self._n, value))
        prev = node.prev
        if prev is not None and self.findmin == "heap":
            self._push_pair_key(prev)
        if len(self._list) > self.working_buckets:
            if self.findmin == "heap":
                self._merge_min_pair()
            else:
                self._merge_min_pair_linear()
        self._n += 1

    def _insert_observed(self, value) -> None:
        """Instrumented twin of :meth:`insert` (same algorithm + hooks)."""
        start = perf_counter()
        soa = self._soa
        if soa is not None:
            if soa.insert(value):
                self._metrics.on_merge()
            self._metrics.on_insert(latency=perf_counter() - start)
            return
        node = self._list.append(Bucket.singleton(self._n, value))
        prev = node.prev
        if prev is not None and self.findmin == "heap":
            self._push_pair_key(prev)
        if len(self._list) > self.working_buckets:
            if self.findmin == "heap":
                self._merge_min_pair()
            else:
                self._merge_min_pair_linear()
            self._metrics.on_merge()
        self._n += 1
        self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays take the vectorized fast path: at steady
        state the arriving singleton is merged into the tail exactly when
        its pair key is the strict heap minimum, so the kernel pre-computes
        the longest such run with NumPy accumulates and absorbs it in one
        O(log B) step.  Bucket state is identical to the scalar loop; with
        instrumentation on, the batch emits one ``on_insert`` event
        carrying the item count instead of one event per item.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        soa = self._soa
        chunk = soa.extend_chunk if soa is not None else self._extend_chunk
        merges = 0
        for off in range(0, n, MAX_WINDOW):
            merges += chunk(arr[off : off + MAX_WINDOW])
        if observe:
            if merges:
                self._metrics.on_merge(merges)
            self._metrics.on_insert(n, latency=perf_counter() - start)

    def insert_run(self, beg: int, end: int, lo, hi) -> bool:
        """Try to ingest a pre-reduced run of values in O(log B).

        The run covers stream indices ``[beg, end]`` (continuing at
        ``items_seen``) with value bounds ``lo`` / ``hi``.  Returns True
        when every item of the run would provably be absorbed into the
        tail bucket by Algorithm 1 -- the run's worst-case pair key stays
        strictly below both the evolving (prev, tail) key and the cheapest
        untouched pair -- leaving the summary exactly as if each value had
        been inserted.  Returns False (summary untouched) otherwise.
        """
        soa = self._soa
        if soa is not None:
            return soa.insert_run(beg, end, lo, hi)
        if beg != self._n:
            raise InvalidParameterError(
                f"run starts at {beg}, summary expects {self._n}"
            )
        if end < beg or lo > hi:
            raise InvalidParameterError(
                f"invalid run [{beg}, {end}] with bounds [{lo}, {hi}]"
            )
        lst = self._list
        count = end - beg + 1
        if self.working_buckets == 1 and len(lst) == 1:
            lst.head.bucket.insert_run(beg, end, lo, hi)
            self._n += count
            return True
        if len(lst) != self.working_buckets or self.working_buckets < 2:
            return False
        tail = lst.tail
        prev = tail.prev
        tb = tail.bucket
        new_lo = lo if lo < tb.min else tb.min
        new_hi = hi if hi > tb.max else tb.max
        run_key = (new_hi - new_lo) / 2.0
        pair_key, static_min = self._tail_pair_keys()
        # Per-item keys only grow toward run_key, and the (prev, tail) key
        # only grows from pair_key, so this one check certifies every step.
        if not (run_key < pair_key and run_key < static_min):
            return False
        tb.insert_run(beg, end, lo, hi)
        if self.findmin == "heap":
            self._update_pair_key(prev)
        self._n += count
        return True

    def _tail_pair_keys(self) -> tuple:
        """``(pair_key, static_min)`` for the steady-state fast path.

        ``pair_key`` is the current merge error of (prev, tail);
        ``static_min`` is the cheapest merge among all *other* adjacent
        pairs -- the keys a tail absorption run cannot change.
        """
        tail = self._list.tail
        prev = tail.prev
        if self.findmin == "heap":
            heap = self._heap
            handle = prev.pair_handle
            pair_key = heap.key_of(handle)[0]
            if heap.peek_min_handle() != handle:
                static_min = heap._keys[0][0]
            else:
                slot = heap._slot_of[handle]
                static_min = inf
                for s, key in enumerate(heap._keys):
                    if s != slot and key[0] < static_min:
                        static_min = key[0]
            return pair_key, static_min
        pair_key = prev.bucket.merge_error_with(tail.bucket)
        static_min = inf
        node = self._list.head
        while node.next is not None:
            if node is not prev:
                key = node.bucket.merge_error_with(node.next.bucket)
                if key < static_min:
                    static_min = key
            node = node.next
        return pair_key, static_min

    def _extend_chunk(self, arr) -> int:
        """Batch-ingest one chunk; returns the number of merges performed."""
        insert = MinMergeHistogram.insert  # plain scalar path, never the
        # instrumented twin: the caller aggregates the batch's events.
        lst = self._list
        cap = self.working_buckets
        n = len(arr)
        i = 0
        while i < n and len(lst) < cap:
            insert(self, arr[i].item())
            i += 1
        if i == n:
            return 0
        merges = 0
        if cap == 1:
            rest = arr[i:]
            lst.head.bucket.insert_run(
                self._n, self._n + (n - i) - 1, rest.min().item(), rest.max().item()
            )
            self._n += n - i
            return n - i
        window = 256
        short = 0
        block = 64
        while i < n:
            if short >= 8:
                # Sticky scalar fallback: the block grows each time the
                # vectorized probe fails again, so rough streams converge
                # to plain scalar speed (values unboxed once via tolist).
                short = 0
                stop = min(n, i + block)
                if block < MAX_WINDOW:
                    block *= 8
                for v in arr[i:stop].tolist():
                    insert(self, v)
                merges += stop - i
                i = stop
                if i == n:
                    break
            tail = lst.tail
            prev = tail.prev
            tb = tail.bucket
            pb = prev.bucket
            pair_key, static_min = self._tail_pair_keys()
            seg = arr[i : i + window]
            ehi = np.maximum(np.maximum.accumulate(seg), tb.max)
            elo = np.minimum(np.minimum.accumulate(seg), tb.min)
            key = (ehi - elo) / 2.0
            pair = (np.maximum(ehi, pb.max) - np.minimum(elo, pb.min)) / 2.0
            evolving = np.empty_like(pair)
            evolving[0] = pair_key
            evolving[1:] = pair[:-1]
            good = (key < static_min) & (key < evolving)
            if good.all():
                run = len(seg)
            else:
                run = int(np.argmin(good))
            if run:
                tb.insert_run(
                    self._n, self._n + run - 1, elo[run - 1].item(), ehi[run - 1].item()
                )
                self._n += run
                merges += run
                i += run
                if self.findmin == "heap":
                    self._update_pair_key(prev)
                if run == len(seg):
                    window = min(window * 2, MAX_WINDOW)
                    continue
                window = 256
            if run < 4:
                short += 1
            else:
                short = 0
                block = 64
            if i < n:
                insert(self, arr[i].item())
                merges += 1
                i += 1
        return merges

    # -- aggregation hooks ---------------------------------------------------

    def adopt_buckets(self, buckets: Iterable[Bucket], *, count: Optional[int] = None) -> None:
        """Append pre-built buckets after the current tail.

        The hook behind :func:`repro.core.aggregation.merge_min_merge_summaries`
        and the parallel shard combiner: ``buckets`` must be in stream order
        and start strictly after the current last covered index.  Each bucket
        is copied, pair keys are maintained, and ``items_seen`` grows by
        ``count`` (default: the covered index span).  No compaction happens
        here -- call :meth:`compact` to re-establish the working budget.
        """
        soa = self._soa
        if soa is not None:
            soa.adopt_buckets(buckets, count)
            return
        last = self._list.tail.bucket.end if len(self._list) else None
        span = 0
        for bucket in buckets:
            if last is not None and bucket.beg <= last:
                raise InvalidParameterError(
                    f"adopted bucket [{bucket.beg}, {bucket.end}] does not "
                    f"follow the current tail (last covered index {last})"
                )
            last = bucket.end
            span += bucket.end - bucket.beg + 1
            node = self._list.append(
                Bucket(bucket.beg, bucket.end, bucket.min, bucket.max)
            )
            if node.prev is not None and self.findmin == "heap":
                self._push_pair_key(node.prev)
        self._n += span if count is None else count

    def compact(self) -> int:
        """Merge cheapest adjacent pairs until the working budget holds.

        Returns the number of merges performed.  A no-op on summaries
        already within ``working_buckets``.
        """
        soa = self._soa
        if soa is not None:
            return soa.compact()
        merges = 0
        while len(self._list) > self.working_buckets:
            if self.findmin == "heap":
                self._merge_min_pair()
            else:
                self._merge_min_pair_linear()
            merges += 1
        return merges

    # -- queries -----------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed so far."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def bucket_count(self) -> int:
        """Current number of working buckets."""
        soa = self._soa
        return soa.size if soa is not None else len(self._list)

    @property
    def error(self) -> float:
        """Current summary error ``err(S)`` -- the largest bucket error."""
        soa = self._soa
        if soa is not None:
            if soa.size == 0:
                raise EmptySummaryError("no values inserted yet")
            return soa.error()
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        return max(node.bucket.error for node in self._list)

    def buckets_snapshot(self) -> list[Bucket]:
        """Copy of the current buckets, in stream order."""
        soa = self._soa
        if soa is not None:
            return soa.buckets_snapshot()
        return [
            Bucket(b.beg, b.end, b.min, b.max) for b in self._list.buckets()
        ]

    def histogram(self) -> Histogram:
        """The current piecewise-constant approximation."""
        soa = self._soa
        if soa is not None:
            if soa.size == 0:
                raise EmptySummaryError("no values inserted yet")
            segments = [
                Segment(b, e, (hi + lo) / 2.0, (hi + lo) / 2.0)
                for b, e, lo, hi in soa.iter_buckets()
            ]
            return Histogram(segments, soa.error())
        if not self._list:
            raise EmptySummaryError("no values inserted yet")
        segments = [
            Segment(b.beg, b.end, b.representative, b.representative)
            for b in self._list.buckets()
        ]
        return Histogram(segments, self.error)

    def memory_bytes(self) -> int:
        """Accounted memory: buckets plus heap entries (Section 2.1.1).

        Under ``backend="soa"`` the heap term counts the lazy heap's
        actual entries (stale included) -- the honest figure; compaction
        bounds it at a small multiple of the pair count.
        """
        soa = self._soa
        if soa is not None:
            return self._model.buckets(soa.size) + self._model.heap_entries(
                len(soa.heap)
            )
        return self._model.buckets(len(self._list)) + self._model.heap_entries(
            len(self._heap)
        )

    # -- invariants (used by tests) -----------------------------------------

    def check_min_merge_property(self) -> None:
        """Assert that merging any adjacent pair has error >= err(S).

        This is the invariant behind Lemma 1; the paper's induction shows it
        holds after every completed insert (before the summary fills, all
        buckets are singletons with err(S) = 0 and it holds vacuously).
        """
        if self.bucket_count < 2:
            return
        current = self.error
        snapshot = self.buckets_snapshot()
        for left, right in zip(snapshot, snapshot[1:]):
            pair_error = left.merge_error_with(right)
            if pair_error >= current:
                continue
            raise AssertionError(
                f"min-merge property violated: pair at [{left.beg},"
                f"{right.end}] merges with error {pair_error} "
                f"< err(S) = {current}"
            )

    def check_heap_consistency(self) -> None:
        """Assert every adjacent pair has a correct key in the heap (tests)."""
        soa = self._soa
        if soa is not None:
            soa.check_consistency()
            return
        if self.findmin == "linear":
            if len(self._heap) != 0:
                raise AssertionError("linear FINDMIN must not populate the heap")
            return
        self._heap.check_invariant()
        pairs = 0
        for node in self._list:
            if node.next is None:
                if node.pair_handle is not None:
                    raise AssertionError("tail node holds a pair handle")
                continue
            pairs += 1
            if node.pair_handle is None:
                raise AssertionError(
                    f"pair at [{node.bucket.beg}, {node.next.bucket.end}] "
                    "missing from heap"
                )
            key, tiebreak = self._heap.key_of(node.pair_handle)
            expected = node.bucket.merge_error_with(node.next.bucket)
            if key != expected or tiebreak != node.bucket.beg:
                raise AssertionError(
                    f"stale heap key {(key, tiebreak)} != merge error "
                    f"{(expected, node.bucket.beg)}"
                )
        if pairs != len(self._heap):
            raise AssertionError(
                f"heap holds {len(self._heap)} keys for {pairs} pairs"
            )

    # -- internals -----------------------------------------------------------

    def _push_pair_key(self, left: BucketNode) -> None:
        """Insert the merge key for the pair (left, left.next).

        The key is the tuple ``(merge_error, left.bucket.beg)``: the start
        index breaks ties between equal merge errors, making FINDMIN a pure
        function of the bucket list (leftmost cheapest pair) rather than of
        the heap's insertion history.  Determinism matters because the
        batched ingest path and checkpoint restore rebuild the heap in a
        different order than item-at-a-time inserts did.
        """
        key = left.bucket.merge_error_with(left.next.bucket)
        left.pair_handle = self._heap.push((key, left.bucket.beg), left)

    def _update_pair_key(self, left: BucketNode) -> None:
        """Recompute (left, left.next)'s key in place (handle preserved).

        Every key is the unique tuple ``(merge_error, left.bucket.beg)``,
        so FINDMIN is a pure function of the bucket list and in-place
        sifting is bit-identical to the remove + push it replaces -- at
        half the heap traffic (the steady-state ingest hot spot).
        """
        key = left.bucket.merge_error_with(left.next.bucket)
        self._heap.update(left.pair_handle, (key, left.bucket.beg))

    def _merge_min_pair(self) -> None:
        """FINDMIN + MERGE: collapse the cheapest adjacent pair.

        Of the up-to-three keys a merge invalidates, two are recycled in
        place: the (left.prev, left) key is updated (same node, new
        error), and the dying (right, right.next) entry is repointed to
        the merged pair (left, new next) -- so a steady-state merge costs
        one pop plus two sifts instead of three removes and two pushes.
        """
        heap = self._heap
        _key, left = heap.pop_min()
        left.pair_handle = None
        right = left.next
        right_handle = right.pair_handle
        left.bucket = left.bucket.merged_with(right.bucket)
        self._list.remove(right)
        if left.prev is not None:
            self._update_pair_key(left.prev)
        if left.next is not None:
            # ``right`` was not the tail, so its handle is live: reuse its
            # entry for the merged bucket's right-hand pair.
            key = left.bucket.merge_error_with(left.next.bucket)
            heap.update(right_handle, (key, left.bucket.beg), item=left)
            left.pair_handle = right_handle
        elif right_handle is not None:  # pragma: no cover - defensive
            heap.remove(right_handle)

    def _merge_min_pair_linear(self) -> None:
        """FINDMIN by O(B) scan -- the paper's footnote-4 implementation."""
        best = None
        best_key = None
        for node in self._list:
            if node.next is None:
                break
            key = node.bucket.merge_error_with(node.next.bucket)
            if best_key is None or key < best_key:
                best_key = key
                best = node
        right = best.next
        best.bucket = best.bucket.merged_with(right.bucket)
        self._list.remove(right)
