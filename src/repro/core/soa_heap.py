"""Lazy-deletion pair heap shared by the structure-of-arrays kernels.

The object kernels drive FINDMIN through
:class:`repro.structures.heap.AddressableMinHeap`, whose sift loops are
interpreted Python -- the dominant per-item cost at steady state.  The
SoA kernels (:mod:`repro.core.soa`) replace it with the C-implemented
:mod:`heapq` over plain tuples plus *lazy deletion*: nothing is ever
removed or resifted in place; key changes simply push a fresh entry and
stale ones are discarded when they surface at the top.

Entry format
------------
Every entry is the tuple ``(err, beg, slot)`` where ``slot`` indexes the
kernel's columns, ``beg`` is that bucket's start index and ``err`` the
merge error of the adjacent pair ``(slot, nxt[slot])`` at push time.
The ``(err, beg)`` prefix is exactly the unique key the object backend
feeds ``AddressableMinHeap`` (see ``MinMergeHistogram._push_pair_key``),
so the minimum *valid* entry names the same pair the object backend's
FINDMIN returns -- the leftmost cheapest -- which is what makes the two
backends bit-identical.

Validity rule
-------------
An entry ``(err, b, s)`` is current iff::

    nxt[s] >= 0 and beg[s] == b and pkey[s] == err

* ``nxt[s] >= 0`` -- the slot is live and not the tail, i.e. the pair
  ``(s, nxt[s])`` exists (``-1`` marks the tail, ``-2`` a freed slot).
* ``beg[s] == b`` -- the slot was not recycled: bucket start indices are
  strictly increasing over a bucket's lifetime and never reused (a merge
  keeps the *left* start; new starts are fresh stream positions), so a
  recycled slot can never reproduce a dead entry's ``beg``.
* ``pkey[s] == err`` -- the key did not change since the push.  The
  kernels maintain ``pkey[s]`` as the pair's current merge error and
  push on every change, so each live pair always has at least one
  current entry.

A current entry may be a duplicate (e.g. a key changed and later changed
back), but any current entry equals the pair's true key, so popping one
is always correct.

Compaction
----------
Stale entries accumulate at one per key change.  The kernels call
:func:`compact` when the heap grows past ``4x`` the live-pair count
(and past a small floor), rebuilding it in place from the columns --
in place because the ingest hot loops hold aliases to the heap list.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import inf

# Compaction floor: below this many entries the stale fraction cannot
# cost enough to be worth a rebuild.
COMPACT_FLOOR = 64
# Rebuild once stale entries outnumber live pairs by this factor.
COMPACT_RATIO = 4


def pop_min_valid(heap: list, nxt: list, beg: list, pkey: list) -> tuple:
    """Pop and return the minimum current entry ``(err, b, s)``.

    Discards stale entries on the way.  The caller guarantees at least
    one pair exists (every live pair has a current entry), so the heap
    cannot run dry here.
    """
    while True:
        entry = heap[0]
        err, b, s = entry
        heappop(heap)
        if nxt[s] >= 0 and beg[s] == b and pkey[s] == err:
            return entry


def static_min_excluding(
    heap: list, nxt: list, beg: list, pkey: list, excl: int
) -> float:
    """Minimum current pair key over every pair except ``(excl, nxt[excl])``.

    The SoA analogue of ``MinMergeHistogram._tail_pair_keys``'s scan:
    the batched ingest certificate needs the cheapest merge among the
    pairs a tail absorption run cannot change.  Current entries for the
    excluded slot are popped aside and pushed back; stale entries are
    dropped for good.  Returns ``inf`` when no other pair exists.
    """
    aside = []
    result = inf
    while heap:
        err, b, s = heap[0]
        if nxt[s] < 0 or beg[s] != b or pkey[s] != err:
            heappop(heap)
            continue
        if s == excl:
            aside.append(heappop(heap))
            continue
        result = err
        break
    for entry in aside:
        heappush(heap, entry)
    return result


def compact(heap: list, nxt: list, beg: list, pkey: list) -> None:
    """Rebuild the heap **in place** with one current entry per pair."""
    heap[:] = [(pkey[s], beg[s], s) for s, nx in enumerate(nxt) if nx >= 0]
    heapify(heap)


def check_heap(heap: list, nxt: list, beg: list, pkey: list) -> None:
    """Assert the lazy heap's invariants (used by the test suite).

    * heap order holds (every child >= its parent);
    * every live pair is represented by at least one current entry;
    * every current entry carries that pair's true ``pkey``;
    * staleness is bounded by the compaction policy (with slack for the
      pushes since the last merge checked it).
    """
    for k in range(1, len(heap)):
        if heap[k] < heap[(k - 1) >> 1]:
            raise AssertionError(f"heap order violated at index {k}")
    pairs = {s for s, nx in enumerate(nxt) if nx >= 0}
    current = set()
    for err, b, s in heap:
        if nxt[s] >= 0 and beg[s] == b and pkey[s] == err:
            current.add(s)
    if current != pairs:
        missing = sorted(pairs - current)
        raise AssertionError(f"pairs without a current heap entry: {missing}")
    bound = max(COMPACT_FLOOR, COMPACT_RATIO * len(pairs)) + COMPACT_FLOOR
    if len(heap) > bound:
        raise AssertionError(
            f"lazy heap holds {len(heap)} entries for {len(pairs)} pairs "
            f"(compaction bound {bound})"
        )
