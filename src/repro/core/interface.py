"""The unified :class:`StreamingSummary` protocol and shared constructor
conventions.

Every streaming summary in this library -- the paper's algorithms in
``repro/core``, the baselines, the relative-error and L2 variants, and the
many-stream :class:`~repro.fleet.StreamFleet` -- satisfies one structural
protocol so harnesses, benchmarks, and deployments can treat them
uniformly:

* ``insert(value)`` / ``extend(values)`` -- ingestion;
* ``items_seen`` -- stream position;
* ``error`` -- current summary error;
* ``histogram()`` -- materialize the current approximation;
* ``memory_bytes()`` -- accounted algorithmic memory;
* ``metrics`` -- the :class:`~repro.observability.SummaryMetrics`
  instrumentation facade, or ``None`` when the summary was built without
  ``metrics=`` (see ``docs/OBSERVABILITY.md``).

Conformance is *structural* (:pep:`544`): ``isinstance(obj,
StreamingSummary)`` checks member presence, which is exactly what the
parametrized conformance test in ``tests/test_interface.py`` pins down for
every public class.

This module also centralizes the constructor keyword conventions the
classes agreed on when their signatures were unified:

* ``buckets`` is always the **target** bucket count ``B`` of the guarantee;
* ``working_buckets`` is always the optional working-budget override of
  the merge family (defaults to ``2 * buckets`` where the (1, 2) theorem
  needs the slack, and to ``buckets`` where there is no such theorem);
* ``hull_epsilon`` always defaults to :data:`DEFAULT_HULL_EPSILON`
  (``None`` = exact hulls, the strongest guarantee); bounded-memory
  approximate hulls are an explicit opt-in;
* ``include_zero_level`` is the one spelling for prepending the exact
  ladder levels (:class:`~repro.core.error_ladder.ErrorLadder` accepted
  ``include_zero`` historically; the deprecation shim was retired after
  one release cycle and the old spelling is now a :class:`TypeError`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

__all__ = [
    "DEFAULT_HULL_EPSILON",
    "StreamingSummary",
    "conforms",
    "missing_members",
]

#: Unified default for the PWL classes' hull slack: ``None`` keeps exact
#: convex hulls (tightest guarantee, data-dependent memory).  Pass a float
#: in (0, 1) for the paper's size-capped approximate hulls.  Historically
#: :class:`~repro.core.pwl_min_merge.PwlMinMergeHistogram` defaulted to
#: ``0.1`` while :class:`~repro.core.pwl_min_increment.PwlMinIncrementHistogram`
#: defaulted to ``None``; the harness registry still runs the paper's
#: experiments at ``hull_epsilon=0.1`` explicitly.
DEFAULT_HULL_EPSILON: Optional[float] = None


@runtime_checkable
class StreamingSummary(Protocol):
    """Structural protocol shared by every streaming summary.

    Notes on the two deliberate loosenesses:

    * :class:`~repro.baselines.rehist.RehistHistogram` materializes its
      histogram from the original values (``histogram(values)``) -- the
      member is present with a wider signature.
    * :class:`~repro.fleet.StreamFleet` conforms in aggregate: its
      ``insert``/``extend``/``histogram``/``error`` take a stream id, its
      ``items_seen``/``memory_bytes`` total over all member streams.
    """

    def insert(self, value) -> None:
        """Process the next stream value."""
        ...

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Semantically identical to calling :meth:`insert` per value, and
        implementations MUST keep it so: lists and 1-D numeric ndarrays
        may take a vectorized batch path (see :mod:`repro.core.batch` and
        ``docs/API.md``), but the resulting summary state must match the
        scalar loop exactly.  With instrumentation on, one batch emits a
        single ``on_insert`` event carrying the item count.
        """
        ...

    @property
    def items_seen(self) -> int:
        """Number of stream values accepted so far."""
        ...

    @property
    def error(self) -> float:
        """Current summary error."""
        ...

    def histogram(self):
        """Materialize the current approximation."""
        ...

    def memory_bytes(self) -> int:
        """Accounted algorithmic memory in bytes."""
        ...

    @property
    def metrics(self):
        """Instrumentation facade, or ``None`` when not instrumented."""
        ...


#: Member names the protocol requires (kept explicit so conformance
#: reporting can say *what* is missing rather than just "not an instance").
_PROTOCOL_MEMBERS = (
    "insert",
    "extend",
    "items_seen",
    "error",
    "histogram",
    "memory_bytes",
    "metrics",
)


def missing_members(cls: type) -> list[str]:
    """Protocol members the *class* does not define (empty = conformant)."""
    return [name for name in _PROTOCOL_MEMBERS if not hasattr(cls, name)]


def conforms(cls: type) -> bool:
    """True when the class declares every :class:`StreamingSummary` member.

    Class-level check (no instantiation), so it is safe for classes whose
    properties raise on an empty summary.
    """
    return not missing_members(cls)
