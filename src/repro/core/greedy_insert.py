"""GREEDY-INSERT: the optimal dual solver (Section 2.2, Lemma 2).

For a *fixed* target error ``e``, GREEDY-INSERT minimizes the number of
buckets needed to approximate the stream within error ``e``: it keeps the
last bucket *open* and extends it with each arriving value for as long as
the bucket's half-range stays within ``e``; when the next value would push
the error past ``e``, the bucket is closed and a fresh one opened.
Lemma 2 proves this greedy is exactly optimal -- no algorithm can cover the
same stream within error ``e`` using fewer buckets.

MIN-INCREMENT runs one of these summaries per ladder level; the sliding
window variant reuses it with an expiry/trim policy (Section 4.1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.batch import MAX_WINDOW, as_batch_array, greedy_chunk
from repro.core.bucket import Bucket
from repro.core.histogram import Histogram, Segment
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.memory.model import DEFAULT_MODEL, MemoryModel


class GreedyInsertSummary:
    """Minimum-bucket approximation of a stream for one target error.

    Parameters
    ----------
    target_error:
        The error budget ``e >= 0``; every bucket's half-range is kept
        ``<= e``.
    start_index:
        Absolute stream index of the first value this summary will see
        (0 for full-stream use).
    """

    __slots__ = ("target_error", "_closed", "_open", "_next_index", "_model")

    def __init__(
        self,
        target_error: float,
        *,
        start_index: int = 0,
        memory_model: MemoryModel = DEFAULT_MODEL,
    ):
        if target_error < 0:
            raise InvalidParameterError(
                f"target_error must be >= 0, got {target_error}"
            )
        self.target_error = target_error
        self._closed: list[Bucket] = []
        self._open: Optional[Bucket] = None
        self._next_index = start_index
        self._model = memory_model

    # -- ingestion -----------------------------------------------------------

    def insert(self, value) -> None:
        """GREEDY-INSERT one value."""
        if self._open is None:
            self._open = Bucket.singleton(self._next_index, value)
        elif self._open.would_extend_error(value) <= self.target_error:
            self._open.extend(value)
        else:
            self._closed.append(self._open)
            self._open = Bucket.singleton(self._next_index, value)
        self._next_index += 1

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays route through the vectorized kernel of
        :mod:`repro.core.batch`; the result is identical to the scalar
        loop, item for item.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        for off in range(0, len(arr), MAX_WINDOW):
            chunk = arr[off : off + MAX_WINDOW]
            self._open, _ = greedy_chunk(
                chunk,
                self._next_index,
                self._open,
                self._closed.append,
                self.target_error,
            )
            self._next_index += len(chunk)

    def insert_run(self, beg: int, end: int, lo, hi) -> bool:
        """O(1) ingestion of a pre-reduced run (Section 2.2.2, generalized).

        The run covers stream indices ``[beg, end]`` (which must continue
        the stream at ``items_seen``) with value bounds ``lo`` / ``hi``.
        Returns True when the whole run fits within the target error --
        absorbed into the open bucket, or opening a fresh one -- leaving
        the summary exactly as if each value had been inserted.  Returns
        False, leaving the summary untouched, when absorption is not
        provably equivalent (the caller must replay the raw values).
        """
        if beg != self._next_index:
            raise InvalidParameterError(
                f"run starts at {beg}, summary expects {self._next_index}"
            )
        count = end - beg + 1
        if self._open is not None:
            new_lo = lo if lo < self._open.min else self._open.min
            new_hi = hi if hi > self._open.max else self._open.max
            if (new_hi - new_lo) / 2.0 <= self.target_error:
                self._open.insert_run(beg, end, lo, hi)
                self._next_index += count
                return True
            return False
        if (hi - lo) / 2.0 <= self.target_error:
            self._open = Bucket(beg, end, lo, hi)
            self._next_index += count
            return True
        return False

    def insert_batch(self, values: Sequence, lo, hi) -> bool:
        """Batched fast path of Section 2.2.2.

        ``lo``/``hi`` must be the min/max of ``values``.  If the whole batch
        fits in the open bucket without exceeding the target error (Case 1),
        it is absorbed in O(1); otherwise (Case 2) the batch is scanned
        item by item.  Returns True when the O(1) fast path was taken.
        """
        if not values:
            return True
        if self._open is not None:
            new_lo = lo if lo < self._open.min else self._open.min
            new_hi = hi if hi > self._open.max else self._open.max
            if (new_hi - new_lo) / 2.0 <= self.target_error:
                self._open.end += len(values)
                self._open.min = new_lo
                self._open.max = new_hi
                self._next_index += len(values)
                return True
        elif (hi - lo) / 2.0 <= self.target_error:
            self._open = Bucket(
                self._next_index, self._next_index + len(values) - 1, lo, hi
            )
            self._next_index += len(values)
            return True
        for value in values:
            self.insert(value)
        return False

    # -- queries ---------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values processed (relative to start_index)."""
        first = self._closed[0].beg if self._closed else (
            self._open.beg if self._open is not None else self._next_index
        )
        return self._next_index - first

    @property
    def metrics(self):
        """Always ``None``: leaf summaries run inside MIN-INCREMENT's
        ladder, whose parent does the event accounting -- instrumenting the
        per-level hot loop would multiply the overhead by the ladder size."""
        return None

    @property
    def bucket_count(self) -> int:
        """Buckets used so far, counting the open one."""
        return len(self._closed) + (1 if self._open is not None else 0)

    def buckets_snapshot(self) -> list[Bucket]:
        """Copy of all buckets (closed plus open), in stream order."""
        out = [Bucket(b.beg, b.end, b.min, b.max) for b in self._closed]
        if self._open is not None:
            b = self._open
            out.append(Bucket(b.beg, b.end, b.min, b.max))
        return out

    @property
    def error(self) -> float:
        """Largest bucket error so far (always <= target_error)."""
        if self.bucket_count == 0:
            raise EmptySummaryError("no values inserted yet")
        worst = 0.0
        for bucket in self._closed:
            if bucket.error > worst:
                worst = bucket.error
        if self._open is not None and self._open.error > worst:
            worst = self._open.error
        return worst

    def histogram(self) -> Histogram:
        """The current piecewise-constant approximation."""
        if self.bucket_count == 0:
            raise EmptySummaryError("no values inserted yet")
        segments = [
            Segment(b.beg, b.end, b.representative, b.representative)
            for b in self.buckets_snapshot()
        ]
        return Histogram(segments, self.error)

    def memory_bytes(self) -> int:
        """Accounted memory: closed buckets plus the open-bucket state."""
        total = self._model.buckets(len(self._closed))
        if self._open is not None:
            total += self._model.open_buckets(1)
        return total


def greedy_bucket_count(values: Sequence, target_error: float) -> int:
    """Minimum buckets to cover ``values`` within ``target_error``.

    Convenience wrapper used by the offline optimal algorithm and the
    tests; runs GREEDY-INSERT over the whole sequence and returns the
    bucket count (0 for an empty sequence).
    """
    if not len(values):
        return 0
    summary = GreedyInsertSummary(target_error)
    summary.extend(values)
    return summary.bucket_count
