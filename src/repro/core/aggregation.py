"""In-network aggregation: merging MIN-MERGE summaries of stream segments.

The paper's sensor-network motivation has many nodes each summarizing its
own readings; an aggregation tree then needs to *combine* child summaries
into one summary of the concatenated stream without replaying raw data.
MIN-MERGE supports this exactly:

1. concatenate the children's bucket lists (adjacent index ranges);
2. repeatedly merge the cheapest adjacent pair until ``2B`` buckets remain.

**The (1, 2) guarantee survives.**  Successive min-merge keys are
non-decreasing (merging the minimum pair only raises the other keys), so
after reducing to ``2B`` buckets every remaining adjacent pair costs at
least the last merge ``e_last``.  Against the optimal ``B``-bucket
histogram of the *whole* concatenated stream: it leaves at least ``B + 1``
of our ``2B`` buckets unsplit, pigeonhole gives two adjacent unsplit
buckets inside one optimal bucket, so ``err(OPT) >= e_last``.  Each child
summary's own error is at most its segment's optimal ``B``-bucket error,
which is at most the whole stream's (a restriction of OPT covers the
segment within ``B`` buckets).  Hence

    err(merged) = max(err(children), e_last) <= err(OPT_B).

The same argument goes through for PWL summaries (hull union is the MERGE;
the bucket error is monotone under union), up to the usual approximate-hull
slack.  Property-tested in ``tests/test_aggregation.py`` over arbitrary
segment splits and merge-tree shapes.

**Observability.**  When any child is instrumented, the merged summary is
instrumented too and its counters start from the *sum* of the children's
lifecycle counters plus the merges the reduction itself performed, so
per-segment (or per-shard, see ``repro.parallel``) counts aggregate instead
of silently vanishing.  Latency timelines are process-local and are not
merged.  Pass ``metrics=`` explicitly to direct the merged summary's events
into a caller-owned registry.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.bucket import Bucket
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_bucket import PwlBucket
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import EmptySummaryError, InvalidParameterError
from repro.geometry.convex_hull import StreamingHull
from repro.geometry.kernel import ApproximateHull


def merge_min_merge_summaries(
    summaries: Sequence[MinMergeHistogram],
    *,
    buckets: Optional[int] = None,
    reindex: bool = False,
    metrics=None,
) -> MinMergeHistogram:
    """Combine MIN-MERGE summaries of consecutive stream segments.

    Parameters
    ----------
    summaries:
        Two or more summaries, in stream order.  By default their index
        ranges must be exactly contiguous (each child summarized its slice
        of a shared index space); with ``reindex=True`` each summary is
        shifted to follow its predecessor (children that each indexed from
        zero, the sensor-network case).
    buckets:
        Target ``B`` of the combined summary; defaults to the smallest
        ``B`` among the children.
    metrics:
        Instrumentation for the merged summary (``True``, a registry, or a
        facade; see ``docs/OBSERVABILITY.md``).  Defaults to instrumenting
        exactly when at least one child is instrumented; either way the
        children's counter totals are absorbed into the merged facade.

    Returns a fresh summary over the concatenation, satisfying the (1, 2)
    guarantee against the optimal ``B``-bucket histogram of the whole
    stream (see the module docs for the argument).  ``items_seen`` of the
    result is the *sum of the children's covered spans* -- the number of
    items the buckets actually represent -- even when the first child's
    index range starts past zero.
    """
    _validate_children(summaries)
    if buckets is None:
        buckets = min(s.target_buckets for s in summaries)
    merged = MinMergeHistogram(
        buckets=buckets,
        metrics=_combined_metrics_arg(summaries, metrics),
        # The merged summary inherits the first child's maintenance kernel
        # so a parallel run stays on the backend the caller selected.
        backend=getattr(summaries[0], "backend", "object"),
    )
    offset = 0
    expected_next = None
    covered = 0
    for child in summaries:
        child_buckets = child.buckets_snapshot()
        first = child_buckets[0].beg
        if reindex:
            offset = covered - first
        elif expected_next is not None and first != expected_next:
            raise InvalidParameterError(
                "summaries are not contiguous: expected next index "
                f"{expected_next}, got {first} (pass reindex=True for "
                "independently-indexed children)"
            )
        if offset:
            child_buckets = [
                Bucket(b.beg + offset, b.end + offset, b.min, b.max)
                for b in child_buckets
            ]
        span = child_buckets[-1].end - child_buckets[0].beg + 1
        merged.adopt_buckets(child_buckets, count=span)
        expected_next = child_buckets[-1].end + 1
        covered += span
    reduction_merges = merged.compact()
    _absorb_child_metrics(merged, summaries, reduction_merges)
    return merged


def merge_pwl_summaries(
    summaries: Sequence[PwlMinMergeHistogram],
    *,
    buckets: Optional[int] = None,
    reindex: bool = False,
    metrics=None,
) -> PwlMinMergeHistogram:
    """PWL analogue of :func:`merge_min_merge_summaries` (hull unions)."""
    _validate_children(summaries)
    if buckets is None:
        buckets = min(s.target_buckets for s in summaries)
    hull_epsilon = summaries[0].hull_epsilon
    merged = PwlMinMergeHistogram(
        buckets=buckets,
        hull_epsilon=hull_epsilon,
        metrics=_combined_metrics_arg(summaries, metrics),
        backend=getattr(summaries[0], "backend", "object"),
    )
    offset = 0
    expected_next = None
    covered = 0
    for child in summaries:
        child_buckets = child.buckets_snapshot()
        first = child_buckets[0].beg
        if reindex:
            offset = covered - first
        elif expected_next is not None and first != expected_next:
            raise InvalidParameterError(
                "summaries are not contiguous: expected next index "
                f"{expected_next}, got {first} (pass reindex=True for "
                "independently-indexed children)"
            )
        # Always copy (even at offset 0): the merged summary mutates its
        # buckets' hulls, and PWL snapshots share hull state with the child.
        shifted = [_shift_pwl_bucket(b, offset) for b in child_buckets]
        span = shifted[-1].end - shifted[0].beg + 1
        merged.adopt_buckets(shifted, count=span)
        expected_next = shifted[-1].end + 1
        covered += span
    reduction_merges = merged.compact()
    _absorb_child_metrics(merged, summaries, reduction_merges)
    return merged


def _combined_metrics_arg(summaries: Sequence, metrics):
    """The ``metrics=`` argument for the merged summary's constructor."""
    if metrics is not None:
        return metrics
    if any(getattr(s, "metrics", None) is not None for s in summaries):
        return True
    return None


def _absorb_child_metrics(merged, summaries: Sequence, reduction_merges: int) -> None:
    """Fold instrumented children's counters into the merged facade."""
    facade = merged.metrics
    if facade is None:
        return
    for child in summaries:
        child_metrics = getattr(child, "metrics", None)
        if child_metrics is not None:
            facade.absorb_counters(child_metrics.counter_totals())
    if reduction_merges:
        facade.on_merge(reduction_merges)


def _validate_children(summaries: Sequence) -> None:
    if len(summaries) < 2:
        raise InvalidParameterError(
            f"need at least two summaries to merge, got {len(summaries)}"
        )
    for child in summaries:
        if child.items_seen == 0:
            raise EmptySummaryError("cannot merge an empty summary")


def _shift_pwl_bucket(bucket: PwlBucket, offset: int) -> PwlBucket:
    """Copy of ``bucket`` with all stream indices shifted by ``offset``."""
    shifted = object.__new__(PwlBucket)
    shifted.beg = bucket.beg + offset
    shifted.end = bucket.end + offset
    shifted.hull = _shift_hull(bucket.hull, offset)
    shifted._cached_error = bucket._cached_error
    return shifted


def _shift_hull(hull, offset: int):
    """Translate a hull along x (convexity is translation-invariant)."""
    if isinstance(hull, ApproximateHull):
        shifted = ApproximateHull(hull.epsilon)
        shifted._threshold = hull._threshold
        shifted._inner = _shift_streaming_hull(hull._inner, offset)
        return shifted
    return _shift_streaming_hull(hull, offset)


def _shift_streaming_hull(hull: StreamingHull, offset: int) -> StreamingHull:
    shifted = StreamingHull()
    shifted.lower = [(x + offset, y) for x, y in hull.lower]
    shifted.upper = [(x + offset, y) for x, y in hull.upper]
    shifted._count = hull.point_count
    return shifted
