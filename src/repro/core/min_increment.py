"""The MIN-INCREMENT algorithm (Section 2.2, Algorithm 2).

MIN-INCREMENT keeps one GREEDY-INSERT summary per level of a geometric
error ladder ``e_i = (1 + eps)^i``.  Every stream value is inserted into
every surviving summary; a summary that grows beyond ``B`` buckets is
deleted, because by Lemma 2 the optimal B-bucket error must exceed its
target.  At query time the surviving summary with the smallest target error
is the answer: it uses at most ``B`` buckets and, by inequality 2, its error
is within ``(1 + eps)`` of optimal -- a (1 + eps, 1)-approximation in
``O(eps^-1 B log U)`` space (Theorem 2).

The batched variant of Section 2.2.2 is available via ``batch_size``: values
are buffered and each summary first tries to swallow the whole buffer into
its open bucket in O(1) (possible whenever the buffer's min/max fit), which
amortizes the per-item cost to O(1).
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

import numpy as np

from repro.core.batch import (
    MAX_WINDOW,
    absorbable_prefix,
    as_batch_array,
    greedy_chunk,
)
from repro.core.bucket import Bucket
from repro.core.error_ladder import ErrorLadder
from repro.core.greedy_insert import GreedyInsertSummary
from repro.core.histogram import Histogram
from repro.exceptions import (
    DomainError,
    EmptySummaryError,
    InvalidParameterError,
)
from repro.memory.model import DEFAULT_MODEL, MemoryModel
from repro.observability.hooks import SummaryMetrics, resolve_metrics


class MinIncrementHistogram:
    """Streaming (1 + eps, 1)-approximate L-infinity histogram.

    Parameters
    ----------
    buckets:
        Target bucket count ``B``.
    epsilon:
        Approximation parameter in (0, 1); the answer's error is at most
        ``(1 + epsilon)`` times the optimal ``B``-bucket error.
    universe:
        Size ``U`` of the integer value domain ``[0, U)``.  Values outside
        the domain raise :class:`DomainError` (the theory's ladder top
        depends on ``U``).
    batch_size:
        If given, enable the Section 2.2.2 buffered fast path with this
        buffer length; ``None`` processes items one at a time.  The paper
        sets the buffer to ``eps^-1 log U`` (the ladder size), available
        here as ``batch_size="auto"``.
    memory_model:
        Cost model used by :meth:`memory_bytes`.
    metrics:
        Opt-in instrumentation: ``True`` for a private registry, or a
        shared :class:`~repro.observability.MetricsRegistry`; default off
        (see ``docs/OBSERVABILITY.md``).

    Examples
    --------
    >>> h = MinIncrementHistogram(buckets=4, epsilon=0.2, universe=1 << 15)
    >>> h.extend([5, 5, 5, 900, 900, 42, 42, 42])
    >>> hist = h.histogram()
    >>> len(hist) <= 4
    True
    """

    def __init__(
        self,
        buckets: int,
        epsilon: float,
        universe: int,
        *,
        batch_size=None,
        include_zero_level: bool = True,
        memory_model: MemoryModel = DEFAULT_MODEL,
        metrics=None,
    ):
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        self.target_buckets = buckets
        self.universe = universe
        self.ladder = ErrorLadder(
            epsilon, universe, include_zero_level=include_zero_level
        )
        self.epsilon = epsilon
        self._model = memory_model
        self._summaries: list[GreedyInsertSummary] = [
            GreedyInsertSummary(level, memory_model=memory_model)
            for level in self.ladder
        ]
        self._n = 0
        if batch_size == "auto":
            batch_size = len(self.ladder)
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self._batch_size: Optional[int] = batch_size
        self._buffer: list = []
        self._metrics = resolve_metrics(metrics)
        if self._metrics is not None:
            self._metrics.bind_gauges(self)
            # Route ingestion through the instrumented twin.  Binding on
            # the instance keeps the uninstrumented insert() below exactly
            # the seed implementation -- zero overhead when disabled.
            self.insert = self._insert_observed

    # -- ingestion -------------------------------------------------------------

    def insert(self, value) -> None:
        """Process the next stream value (Algorithm 2)."""
        self._check_domain(value)
        self._n += 1
        if self._batch_size is None:
            self._insert_unbuffered(value)
            return
        self._buffer.append(value)
        if len(self._buffer) >= self._batch_size:
            self._flush_buffer()

    def _insert_observed(self, value) -> None:
        """Instrumented twin of :meth:`insert` (same algorithm + hooks)."""
        self._check_domain(value)
        start = perf_counter()
        self._n += 1
        if self._batch_size is None:
            self._insert_unbuffered_observed(value)
        else:
            self._buffer.append(value)
            if len(self._buffer) >= self._batch_size:
                self._flush_buffer()
        self._metrics.on_insert(latency=perf_counter() - start)

    def extend(self, values: Iterable) -> None:
        """Insert every value of an iterable, in order.

        Lists and numeric ndarrays take the vectorized kernel: every
        surviving ladder level absorbs pre-reduced runs, levels that
        outgrow ``B`` buckets stop early (they are dead either way), and
        the final state matches the scalar loop exactly.  Out-of-domain
        values still raise :class:`DomainError` with the prefix before the
        offending item ingested, as the scalar loop would.  With
        instrumentation on, the batch emits one ``on_insert`` event
        carrying the item count instead of one event per item.
        """
        arr = as_batch_array(values)
        if arr is None:
            for value in values:
                self.insert(value)
            return
        n = len(arr)
        if n == 0:
            return
        bad = (arr < 0) | (arr >= self.universe)
        if bad.any():
            offender = int(np.argmax(bad))
            if offender:
                self.extend(values[:offender])
            self._check_domain(arr[offender].item())  # raises DomainError
        observe = self._metrics is not None
        start = perf_counter() if observe else 0.0
        if self._batch_size is None:
            best = self._summaries[0]
            best_buckets = best.bucket_count if observe else 0
            dead = 0
            for off in range(0, n, MAX_WINDOW):
                dead += self._extend_chunk_unbuffered(arr[off : off + MAX_WINDOW])
            if observe:
                if dead:
                    self._metrics.on_promotion(dead)
                if self._summaries[0] is best:
                    absorbed = n - (best.bucket_count - best_buckets)
                    if absorbed > 0:
                        self._metrics.on_merge(absorbed)
        else:
            # The buffered path accounts flush/promotion/merge events
            # itself (group-0 goes through _flush_buffer, which already
            # does its own accounting when instrumented).
            self._extend_buffered(arr, values)
        if observe:
            self._metrics.on_insert(n, latency=perf_counter() - start)

    def insert_run(self, beg: int, end: int, lo, hi) -> bool:
        """O(1)-per-level ingestion of a pre-reduced run of values.

        The run covers stream indices ``[beg, end]`` (continuing at
        ``items_seen``) with value bounds ``lo`` / ``hi``.  Returns True
        when *every* surviving ladder level can absorb the run into its
        open bucket (or open a fresh one) within its target error, leaving
        the summary exactly as if each value had been inserted; returns
        False, leaving the summary untouched, otherwise.  Buffered
        summaries always return False: their flush grouping depends on the
        raw values.
        """
        self._check_domain(lo)
        self._check_domain(hi)
        if beg != self._n:
            raise InvalidParameterError(
                f"run starts at {beg}, summary expects {self._n}"
            )
        if end < beg:
            raise InvalidParameterError(f"run range [{beg}, {end}] is empty")
        if self._batch_size is not None:
            return False
        span = (hi - lo) / 2.0
        for summary in self._summaries:
            open_ = summary._open
            if open_ is not None:
                new_lo = lo if lo < open_.min else open_.min
                new_hi = hi if hi > open_.max else open_.max
                if (new_hi - new_lo) / 2.0 > summary.target_error:
                    return False
            elif span > summary.target_error:
                return False
        limit = self.target_buckets
        survivors = []
        for summary in self._summaries:
            absorbed = summary.insert_run(beg, end, lo, hi)
            assert absorbed
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
        self._keep(survivors)
        self._n = end + 1
        return True

    def _extend_chunk_unbuffered(self, arr) -> int:
        """Batch one chunk into every level; returns dead level count."""
        limit = self.target_buckets
        last = self._summaries[-1]
        survivors = []
        dead = 0
        for summary in self._summaries:
            is_last = summary is last
            summary._open, consumed = greedy_chunk(
                arr,
                summary._next_index,
                summary._open,
                summary._closed.append,
                summary.target_error,
                stop_after=None if is_last else limit,
                bucket_count=summary.bucket_count,
            )
            summary._next_index += consumed
            if summary.bucket_count <= limit or is_last:
                survivors.append(summary)
            else:
                dead += 1
        self._keep(survivors)
        self._n += len(arr)
        return dead

    def _extend_buffered(self, arr, values) -> None:
        """Batched Section 2.2.2 path: whole flush groups at a time.

        Replays the scalar buffer protocol exactly -- same flush
        boundaries, same per-group O(1) absorb-or-rescan decisions -- but
        reduces full groups with vectorized min/max and gallops over
        consecutive absorbable groups.  ``values`` is the original input
        so the leftover buffer keeps the caller's element types.
        """
        size = self._batch_size
        n = len(arr)
        if len(self._buffer) + n < size:
            self._buffer.extend(values[i] for i in range(n))
            self._n += n
            return
        first = size - len(self._buffer)
        if first:
            self._buffer.extend(values[i] for i in range(first))
        self._n += first
        self._flush_buffer()
        groups = (n - first) // size
        if groups:
            observe = self._metrics is not None
            best = self._summaries[0]
            best_buckets = best.bucket_count if observe else 0
            dead = 0
            mid = np.ascontiguousarray(arr[first : first + groups * size])
            blocks = mid.reshape(groups, size)
            gmin = blocks.min(axis=1)
            gmax = blocks.max(axis=1)
            limit = self.target_buckets
            last = self._summaries[-1]
            survivors = []
            for summary in self._summaries:
                is_last = summary is last
                g = 0
                while g < groups:
                    if not is_last and summary.bucket_count > limit:
                        break
                    if summary._open is not None:
                        j, lo, hi = absorbable_prefix(
                            gmin,
                            gmax,
                            g,
                            summary._open.min,
                            summary._open.max,
                            summary.target_error,
                        )
                        if j > g:
                            count = (j - g) * size
                            summary._open.insert_run(
                                summary._next_index,
                                summary._next_index + count - 1,
                                lo,
                                hi,
                            )
                            summary._next_index += count
                            g = j
                            continue
                    elif (gmax[g] - gmin[g]) / 2.0 <= summary.target_error:
                        summary._open = Bucket(
                            summary._next_index,
                            summary._next_index + size - 1,
                            gmin[g].item(),
                            gmax[g].item(),
                        )
                        summary._next_index += size
                        g += 1
                        continue
                    # Case 2 of insert_batch: rescan this group item by item.
                    summary._open, _ = greedy_chunk(
                        blocks[g],
                        summary._next_index,
                        summary._open,
                        summary._closed.append,
                        summary.target_error,
                    )
                    summary._next_index += size
                    g += 1
                if summary.bucket_count <= limit or is_last:
                    survivors.append(summary)
                else:
                    dead += 1
            self._keep(survivors)
            self._n += groups * size
            if observe:
                for _ in range(groups):
                    self._metrics.on_flush(size)
                if dead:
                    self._metrics.on_promotion(dead)
                if survivors[0] is best:
                    absorbed = groups * size - (best.bucket_count - best_buckets)
                    if absorbed > 0:
                        self._metrics.on_merge(absorbed)
        tail_start = first + groups * size
        if tail_start < n:
            self._buffer = [values[i] for i in range(tail_start, n)]
            self._n += n - tail_start

    def flush(self) -> None:
        """Drain the batch buffer (no-op when unbuffered or empty)."""
        if self._buffer:
            self._flush_buffer()

    # -- queries ----------------------------------------------------------------

    @property
    def items_seen(self) -> int:
        """Number of stream values accepted so far (buffered ones included)."""
        return self._n

    @property
    def metrics(self) -> Optional[SummaryMetrics]:
        """Instrumentation facade, or ``None`` when not instrumented."""
        return self._metrics

    @property
    def alive_levels(self) -> list[float]:
        """Target errors whose summaries still fit in ``B`` buckets."""
        return [s.target_error for s in self._summaries]

    def best_summary(self) -> GreedyInsertSummary:
        """The surviving summary with the smallest target error."""
        self.flush()
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        return self._summaries[0]

    def histogram(self) -> Histogram:
        """The (1 + eps, 1)-approximate histogram (Section 2.2.1)."""
        return self.best_summary().histogram()

    @property
    def error(self) -> float:
        """Actual error of the answer histogram."""
        return self.best_summary().error

    def buckets_for_error(self, error: float) -> tuple[int, Optional[int]]:
        """Dual query (Section 2.2's dual problem): buckets needed for ``error``.

        Returns ``(lower, upper)`` bounds on the minimum number of buckets
        that approximate the stream so far within ``error``:

        * ``lower`` comes from the smallest surviving ladder level with
          target >= ``error`` (a more generous budget needs fewer or equal
          buckets, so its count bounds from below);
        * ``upper`` comes from the largest surviving level with target
          <= ``error`` (its partition is feasible for ``error``), or
          ``None`` when every such level has been deleted -- then all the
          summary can certify is ``lower``.
        """
        if error < 0:
            raise InvalidParameterError(f"error must be >= 0, got {error}")
        self.flush()
        if self._n == 0:
            raise EmptySummaryError("no values inserted yet")
        lower = 1
        upper: Optional[int] = None
        for summary in self._summaries:  # ascending targets
            if summary.target_error <= error:
                # Feasible at `error`; the largest such level is tightest.
                upper = summary.bucket_count
            else:
                # First level above `error`: its count can only be smaller
                # than the true answer -- and being the smallest level
                # above, it gives the tightest lower bound.
                lower = summary.bucket_count
                break
        # Monotonicity of the dual (count falls as the budget grows)
        # guarantees lower <= upper whenever both exist.
        return lower, upper

    def memory_bytes(self) -> int:
        """Accounted memory: surviving summaries, ladder entries, buffer."""
        total = sum(s.memory_bytes() for s in self._summaries)
        total += self._model.ladder_entries(len(self._summaries))
        total += self._model.words(len(self._buffer))
        return total

    # -- internals -----------------------------------------------------------------

    def _check_domain(self, value) -> None:
        if not 0 <= value < self.universe:
            raise DomainError(
                f"value {value!r} outside universe [0, {self.universe})"
            )

    def _insert_unbuffered(self, value) -> None:
        limit = self.target_buckets
        survivors = []
        for summary in self._summaries:
            summary.insert(value)
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
        self._keep(survivors)

    def _insert_unbuffered_observed(self, value) -> None:
        """:meth:`_insert_unbuffered` plus merge/promotion accounting.

        A *merge* is the value being absorbed into the answer-level (finest
        surviving) summary's open bucket; a *promotion* is a ladder level
        dying, which moves the answer to a coarser target error.
        """
        limit = self.target_buckets
        best = self._summaries[0]
        best_buckets = best.bucket_count
        survivors = []
        dead = 0
        for summary in self._summaries:
            summary.insert(value)
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
            else:
                dead += 1
        self._keep(survivors)
        if dead:
            self._metrics.on_promotion(dead)
        if survivors[0] is best and best.bucket_count == best_buckets:
            self._metrics.on_merge()

    def _flush_buffer(self) -> None:
        buffer = self._buffer
        lo = min(buffer)
        hi = max(buffer)
        limit = self.target_buckets
        observe = self._metrics is not None
        best = self._summaries[0]
        best_buckets = best.bucket_count if observe else 0
        survivors = []
        dead = 0
        for summary in self._summaries:
            summary.insert_batch(buffer, lo, hi)
            if summary.bucket_count <= limit or summary is self._summaries[-1]:
                survivors.append(summary)
            else:
                dead += 1
        self._keep(survivors)
        self._buffer = []
        if observe:
            self._metrics.on_flush(len(buffer))
            if dead:
                self._metrics.on_promotion(dead)
            if survivors[0] is best:
                # Values that did not open a new answer-level bucket were
                # absorbed into existing ones.
                absorbed = len(buffer) - (best.bucket_count - best_buckets)
                if absorbed > 0:
                    self._metrics.on_merge(absorbed)

    def _keep(self, survivors: list[GreedyInsertSummary]) -> None:
        # The coarsest level always survives (one bucket suffices for the
        # whole domain), so the list never empties.
        self._summaries = survivors
