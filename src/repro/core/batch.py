"""Vectorized batch-ingest kernels (chunked pre-aggregation).

The summaries' scalar ``insert()`` is a per-item Python loop -- correct,
but far from stream rate.  This module supplies the NumPy kernels behind
the batched ``extend()`` overrides: a contiguous chunk is pre-reduced into
per-prospective-bucket ``(min, max, count)`` runs in O(chunk) vectorized
time, and each run is fed to the existing merge/increment state machines
through the O(1) ``insert_run(beg, end, lo, hi)`` primitive.

Everything here is *exact*: the kernels replay the very same float
comparisons the scalar code paths make, so batch and scalar ingestion
produce identical bucket state (property-tested in ``tests/test_batch.py``).
The exactness arguments, per family:

* GREEDY-INSERT -- bucket error is the half-range, which is monotone under
  absorption, so if a whole run fits in the open bucket then every prefix
  fits; the greedy boundary is the first index where the running half-range
  exceeds the target (:func:`absorbable_prefix`).
* MIN-MERGE -- at steady state the arriving singleton is absorbed into the
  tail exactly when its pair key is the strict heap minimum; the kernel
  checks that per-step condition against the static minimum of the
  untouched keys plus the evolving (prev, tail) key.
* PWL -- a PWL bucket's line-fit error is at most half its hull's vertical
  extent, so the serial half-range boundary is a certificate that
  ``try_add`` would succeed; certified points are bulk-added to the hull
  with the same mutation sequence the scalar path performs.

Inputs that cannot be coerced to a 1-D numeric array (object dtypes,
NaNs, generators) fall back to the scalar loop; rough streams where the
vectorized runs degenerate to a handful of items switch to a scalar block
as well, so batch ingestion never loses to ``insert()`` by more than a
small constant.
"""

from __future__ import annotations

import numbers
from typing import Optional

import numpy as np

from repro.core.bucket import Bucket
from repro.exceptions import InvalidParameterError

#: Upper bound on the items a single kernel window examines at once; keeps
#: the temporary accumulate arrays cache-sized no matter the chunk length.
MAX_WINDOW = 1 << 16

#: Number of consecutive short vectorized runs after which a greedy driver
#: degrades to a scalar block (the stream is too rough to amortize the
#: per-call NumPy overhead).
_DEGRADE_AFTER = 8

#: Items handled by one degraded scalar block before retrying the kernel.
_DEGRADE_BLOCK = 512

_START_WINDOW = 64


def as_batch_array(values) -> Optional[np.ndarray]:
    """Coerce ``values`` to a 1-D numeric ndarray, or return ``None``.

    ``None`` means "not batchable" and the caller must use the scalar
    insert loop: non-sequences (generators), object dtypes, booleans, and
    float arrays containing NaN (whose comparison semantics differ from
    the scalar path) are all rejected.  ndarray input is returned as-is --
    no copy -- so callers can batch without materializing twice.
    """
    if isinstance(values, np.ndarray):
        arr = values
    elif isinstance(values, (list, tuple)):
        if not values:
            return np.empty(0)
        try:
            arr = np.asarray(values)
        except (ValueError, TypeError):
            return None
    else:
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "iuf":
        return None
    if arr.dtype.kind == "f" and bool(np.isnan(arr).any()):
        return None
    return arr


def coerce_batch(values):
    """Normalize an append payload to a sized batch (no copies).

    The unified ``append()`` signature (engine, session handle, service
    client) accepts scalars, sequences, and ndarrays through this one
    funnel:

    * a scalar (Python or NumPy number, or a 0-d array) becomes a
      single-item list;
    * a 1-D ndarray or any sized sequence passes through **unchanged**
      (the zero-copy contract of the binary ingest path);
    * other iterables (generators) are materialized exactly once;
    * text and raw bytes are rejected -- they are sized sequences, but
      appending ``"abc"`` as three code points is never what the caller
      meant.
    """
    if isinstance(values, (str, bytes, bytearray, memoryview)):
        raise InvalidParameterError(
            "values must be a number or a sequence of numbers, "
            f"not {type(values).__name__}"
        )
    if isinstance(values, np.ndarray):
        return [values.item()] if values.ndim == 0 else values
    if isinstance(values, numbers.Number):
        return [values]
    if hasattr(values, "__len__"):
        return values
    return list(values)


def absorbable_prefix(
    lo_vals: np.ndarray,
    hi_vals: np.ndarray,
    start: int,
    lo,
    hi,
    target: float,
    *,
    inclusive: bool = True,
):
    """Longest prefix of ``[start:]`` whose running half-range stays in budget.

    ``lo_vals[t]`` / ``hi_vals[t]`` bound item ``t`` (they are the same
    array for raw values, per-group minima/maxima for pre-reduced groups).
    The running bounds are seeded with ``lo`` / ``hi`` -- the open bucket's
    current extremes.  Returns ``(stop, lo, hi)`` where ``stop`` is the
    first index whose absorption pushes ``(hi - lo) / 2.0`` past ``target``
    (``len`` when none does) and ``lo`` / ``hi`` are the combined bounds
    after absorbing everything before ``stop``.

    With ``inclusive`` (the greedy rule) a half-range *equal* to the target
    is still absorbed; the strict variant is what the MIN-MERGE fast path
    needs.  The float comparisons are exactly those of
    :meth:`Bucket.would_extend_error` against the target, so the boundary
    matches the scalar code bit for bit.
    """
    n = len(lo_vals)
    j = start
    window = _START_WINDOW
    while j < n:
        ehi = np.maximum.accumulate(hi_vals[j : j + window])
        elo = np.minimum.accumulate(lo_vals[j : j + window])
        ehi = np.maximum(ehi, hi)
        elo = np.minimum(elo, lo)
        err = (ehi - elo) / 2.0
        bad = err >= target if not inclusive else err > target
        stop = int(np.argmax(bad))
        if bad[stop]:
            if stop == 0:
                return j, lo, hi
            return j + stop, elo[stop - 1].item(), ehi[stop - 1].item()
        lo = elo[-1].item()
        hi = ehi[-1].item()
        j += len(ehi)
        window = min(window * 2, MAX_WINDOW)
    return n, lo, hi


def greedy_chunk(
    arr: np.ndarray,
    base: int,
    open_: Optional[Bucket],
    closed_append,
    target: float,
    *,
    stop_after: Optional[int] = None,
    bucket_count: int = 0,
) -> tuple[Optional[Bucket], int]:
    """Replay GREEDY-INSERT over ``arr`` with vectorized run absorption.

    ``base`` is the absolute stream index of ``arr[0]``; ``open_`` is the
    summary's current open bucket (or ``None``) and ``closed_append``
    receives each bucket the greedy closes.  Returns ``(open, consumed)``.

    ``stop_after`` implements MIN-INCREMENT's early exit: once the summary
    holds more than that many buckets it is dead (Lemma 2) and will be
    discarded, so the remaining items are unobservable and processing may
    stop -- ``consumed`` is then less than ``len(arr)``.  ``bucket_count``
    must be the summary's bucket count on entry when ``stop_after`` is
    used.
    """
    n = len(arr)
    i = 0
    short = 0
    block = _DEGRADE_BLOCK
    while i < n:
        if stop_after is not None and bucket_count > stop_after:
            break
        if open_ is None:
            open_ = Bucket.singleton(base + i, arr[i].item())
            bucket_count += 1
            i += 1
            continue
        if short >= _DEGRADE_AFTER:
            # Persistently short runs: fall back to the scalar loop over a
            # block, unboxed once via tolist().  The block grows each time
            # the kernel probe fails again, so a stream too rough to
            # vectorize converges to plain scalar speed.
            short = 0
            stop = min(n, i + block)
            if block < MAX_WINDOW:
                block *= 8
            for v in arr[i:stop].tolist():
                if open_.would_extend_error(v) <= target:
                    open_.extend(v)
                else:
                    closed_append(open_)
                    open_ = Bucket.singleton(base + i, v)
                    bucket_count += 1
                    if stop_after is not None and bucket_count > stop_after:
                        i += 1
                        break
                i += 1
            continue
        j, lo, hi = absorbable_prefix(arr, arr, i, open_.min, open_.max, target)
        run = j - i
        if run:
            open_.insert_run(open_.end + 1, open_.end + run, lo, hi)
            i = j
        if run < 4:
            short += 1
        else:
            short = 0
            block = _DEGRADE_BLOCK
        if j < n:
            closed_append(open_)
            open_ = Bucket.singleton(base + j, arr[j].item())
            bucket_count += 1
            i = j + 1
    return open_, i


def pwl_greedy_chunk(
    arr: np.ndarray,
    base: int,
    open_,
    closed_append,
    target: float,
    hull_epsilon: Optional[float],
    *,
    stop_after: Optional[int] = None,
    bucket_count: int = 0,
) -> tuple:
    """PWL analogue of :func:`greedy_chunk` (vectorized hull-point batching).

    The kernel certifies a run of points via the half-range bound -- a PWL
    bucket's fit error is at most half its hull's vertical extent, so while
    the running extent stays within ``2 * target`` every ``try_add`` is
    guaranteed to succeed and the points are bulk-added to the hull (same
    mutation sequence as the scalar path, including ``maybe_compress``
    timing for size-capped hulls).  Boundary points where the certificate
    fails go through the real ``try_add``, which may still succeed on
    slope-following data; persistent certificate misses degrade to a
    scalar ``try_add`` block.
    """
    from repro.core.pwl_bucket import ClosedPwlBucket, PwlBucket

    n = len(arr)
    i = 0
    short = 0
    block = _DEGRADE_BLOCK
    ylo = yhi = None
    while i < n:
        if stop_after is not None and bucket_count > stop_after:
            break
        if open_ is None:
            open_ = PwlBucket(base + i, arr[i].item(), hull_epsilon=hull_epsilon)
            bucket_count += 1
            ylo = yhi = arr[i].item()
            i += 1
            continue
        if ylo is None:
            ylo, yhi = open_.hull.y_extent()
        if short >= _DEGRADE_AFTER:
            # Same sticky scalar-block fallback as greedy_chunk.
            short = 0
            stop = min(n, i + block)
            if block < MAX_WINDOW:
                block *= 8
            broke = False
            for v in arr[i:stop].tolist():
                if not open_.try_add(v, target):
                    closed_append(ClosedPwlBucket.from_bucket(open_))
                    open_ = PwlBucket(base + i, v, hull_epsilon=hull_epsilon)
                    bucket_count += 1
                    ylo = yhi = v
                    i += 1
                    if stop_after is not None and bucket_count > stop_after:
                        broke = True
                        break
                else:
                    ylo = v if v < ylo else ylo
                    yhi = v if v > yhi else yhi
                    i += 1
            if broke:
                break
            continue
        j, ylo, yhi = absorbable_prefix(arr, arr, i, ylo, yhi, target)
        run = j - i
        if run <= 2:
            for t in range(i, j):
                open_.add(arr[t].item())
        else:
            for v in arr[i:j].tolist():
                open_.add(v)
        i = j
        if run < 4:
            short += 1
        else:
            short = 0
            block = _DEGRADE_BLOCK
        if j < n:
            v = arr[j].item()
            if open_.try_add(v, target):
                ylo = v if v < ylo else ylo
                yhi = v if v > yhi else yhi
            else:
                closed_append(ClosedPwlBucket.from_bucket(open_))
                open_ = PwlBucket(base + j, v, hull_epsilon=hull_epsilon)
                bucket_count += 1
                ylo = yhi = v
            i = j + 1
    return open_, i
