"""The serial-histogram bucket of Section 2.1.

A bucket summarizes a contiguous run of stream values by the tuple
``(beg, end, min, max)`` -- the inclusive index range it covers plus the
extreme values inside it.  Under the L-infinity metric the optimal
single-value representative is the midpoint ``(max + min) / 2`` and the
bucket's error is the half-range ``(max - min) / 2``; both are exact, not
estimates, which is what makes max-error histograms so much lighter than
their L2 counterparts.
"""

from __future__ import annotations

from repro.exceptions import InvalidParameterError


class Bucket:
    """One serial-histogram bucket: index range plus running min/max.

    Indices are 0-based and the range is inclusive on both ends, so a
    singleton bucket for stream position ``i`` is ``Bucket(i, i, v, v)``.
    """

    __slots__ = ("beg", "end", "min", "max")

    def __init__(self, beg: int, end: int, lo, hi):
        if beg > end:
            raise InvalidParameterError(f"bucket range [{beg}, {end}] is empty")
        if lo > hi:
            raise InvalidParameterError(f"bucket min {lo} exceeds max {hi}")
        self.beg = beg
        self.end = end
        self.min = lo
        self.max = hi

    @classmethod
    def singleton(cls, index: int, value) -> "Bucket":
        """Bucket holding exactly the stream item ``(index, value)``."""
        return cls(index, index, value, value)

    @property
    def count(self) -> int:
        """Number of stream items the bucket covers."""
        return self.end - self.beg + 1

    @property
    def representative(self) -> float:
        """The optimal single value for the bucket: ``(max + min) / 2``."""
        return (self.max + self.min) / 2.0

    @property
    def error(self) -> float:
        """L-infinity error of representing the bucket by its midpoint."""
        return (self.max - self.min) / 2.0

    def extend(self, value) -> None:
        """Absorb the next stream value (at index ``end + 1``) in place."""
        self.end += 1
        if value < self.min:
            self.min = value
        elif value > self.max:
            self.max = value

    def insert_run(self, beg: int, end: int, lo, hi) -> None:
        """Absorb a pre-reduced run of values in O(1), in place.

        The run covers stream indices ``[beg, end]`` -- it must start
        exactly where this bucket ends -- and ``lo`` / ``hi`` bound the
        run's values.  Equivalent to calling :meth:`extend` once per item,
        without needing the items.
        """
        if beg != self.end + 1:
            raise InvalidParameterError(
                f"run [{beg}, {end}] does not adjoin bucket "
                f"[{self.beg}, {self.end}]"
            )
        if end < beg:
            raise InvalidParameterError(f"run range [{beg}, {end}] is empty")
        if lo > hi:
            raise InvalidParameterError(f"run min {lo} exceeds max {hi}")
        self.end = end
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def would_extend_error(self, value) -> float:
        """Error the bucket would have after absorbing ``value`` (no mutation)."""
        lo = value if value < self.min else self.min
        hi = value if value > self.max else self.max
        return (hi - lo) / 2.0

    def merged_with(self, other: "Bucket") -> "Bucket":
        """MERGE of Section 2.1: union of two adjacent buckets.

        ``other`` must begin exactly where this bucket ends.
        """
        if other.beg != self.end + 1:
            raise InvalidParameterError(
                f"buckets [{self.beg},{self.end}] and "
                f"[{other.beg},{other.end}] are not adjacent"
            )
        return Bucket(
            self.beg,
            other.end,
            self.min if self.min <= other.min else other.min,
            self.max if self.max >= other.max else other.max,
        )

    def merge_error_with(self, other: "Bucket") -> float:
        """Error of the union bucket, without constructing it."""
        lo = self.min if self.min <= other.min else other.min
        hi = self.max if self.max >= other.max else other.max
        return (hi - lo) / 2.0

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bucket):
            return NotImplemented
        return (
            self.beg == other.beg
            and self.end == other.end
            and self.min == other.min
            and self.max == other.max
        )

    def __hash__(self) -> int:
        return hash((self.beg, self.end, self.min, self.max))

    def __repr__(self) -> str:
        return f"Bucket(beg={self.beg}, end={self.end}, min={self.min}, max={self.max})"
