"""repro: space-efficient streaming algorithms for max-error histograms.

A faithful, production-quality reproduction of *"Space Efficient Streaming
Algorithms for the Maximum Error Histogram"* (Buragohain, Shrivastava,
Suri; ICDE 2007).

The paper's contributions, all implemented here:

* :class:`MinMergeHistogram` -- the (1, 2)-approximation in O(B) memory
  (Theorem 1): 2B buckets whose error never exceeds the optimal B-bucket
  error.
* :class:`MinIncrementHistogram` -- the (1 + eps, 1)-approximation in
  O(eps^-1 B log U) memory (Theorem 2), built on the exactly-optimal
  GREEDY-INSERT dual solver (Lemma 2).
* :class:`PwlMinMergeHistogram` / :class:`PwlMinIncrementHistogram` --
  the piecewise-linear extensions (Theorems 3-4) backed by streaming
  convex hulls and directional-kernel size caps.
* :class:`SlidingWindowMinIncrement` -- the (1 + eps, 1 + 1/B) sliding
  window histogram in sublinear space (Theorem 5).
* :func:`optimal_histogram` / :func:`optimal_error` -- the exact offline
  optimum via greedy feasibility search (Theorem 6).
* :class:`RehistHistogram` -- the REHIST comparator of the paper's
  experiments, at its characteristic Theta(eps^-1 B^2 log U) space.

Quickstart::

    from repro import MinMergeHistogram

    summary = MinMergeHistogram(buckets=32)
    for value in stream:
        summary.insert(value)
    hist = summary.histogram()
    print(len(hist), hist.error, summary.memory_bytes())

Stateful / multi-tenant use goes through the service layer's session
API (``docs/SERVICE.md``)::

    from repro import Session

    with Session() as session:
        sku = session.stream("sku-42", method="min-merge", buckets=32)
        sku.append(prices)
        hist = sku.histogram()      # hist.meta carries provenance
"""

from repro.core import (
    Bucket,
    ErrorLadder,
    GreedyInsertSummary,
    Histogram,
    MinIncrementHistogram,
    MinMergeHistogram,
    PwlBucket,
    PwlGreedyInsertSummary,
    PwlMinIncrementHistogram,
    PwlMinMergeHistogram,
    Segment,
    SlidingWindowMinIncrement,
    SlidingWindowPwlMinIncrement,
    StreamingSummary,
)
from repro.observability import MetricsRegistry, SummaryMetrics
from repro.baselines import (
    GKQuantileSketch,
    HaarWaveletSynopsis,
    RehistHistogram,
    equi_width_histogram,
    greedy_split_histogram,
)
from repro.exceptions import (
    BackpressureError,
    CheckpointCorruptionError,
    DomainError,
    EmptySummaryError,
    InjectedFaultError,
    InvalidParameterError,
    ReproError,
    UnsupportedCheckpointError,
)
from repro.memory import DEFAULT_MODEL, MemoryModel, MemoryReport
from repro.metrics import (
    l2_error,
    linf_error,
    mean_absolute_error,
    series_linf_distance,
)
from repro.analysis import compression_profile, plan_summary
from repro.api import ALGORITHM_REGISTRY, build_summary, methods, summarize
from repro.core.histogram import HistogramMeta
from repro.service import (
    ServiceClient,
    ServiceError,
    Session,
    StreamEngine,
    StreamHandle,
    StreamServer,
)
from repro.core.aggregation import (
    merge_min_merge_summaries,
    merge_pwl_summaries,
)
from repro.checkpoint import restore, state_dict
from repro.fleet import StreamFleet
from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    ItemJournal,
    RecoveryReport,
    inject_bit_flip,
    inject_torn_write,
)
from repro.parallel import (
    ParallelSummarizer,
    ShardPlan,
    summarize_parallel,
)
from repro.l2 import L2MergeHistogram, voptimal_error, voptimal_histogram
from repro.relative import (
    RelativeMinIncrementHistogram,
    RelativeMinMergeHistogram,
    optimal_relative_error,
)
from repro.offline import (
    min_buckets_for_error,
    min_pwl_buckets_for_error,
    optimal_error,
    optimal_error_dp,
    optimal_histogram,
    optimal_pwl_error,
    optimal_pwl_histogram,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "Bucket",
    "ErrorLadder",
    "GreedyInsertSummary",
    "Histogram",
    "MinIncrementHistogram",
    "MinMergeHistogram",
    "PwlBucket",
    "PwlGreedyInsertSummary",
    "PwlMinIncrementHistogram",
    "PwlMinMergeHistogram",
    "Segment",
    "SlidingWindowMinIncrement",
    "SlidingWindowPwlMinIncrement",
    "StreamingSummary",
    # observability
    "MetricsRegistry",
    "SummaryMetrics",
    # baselines
    "HaarWaveletSynopsis",
    "GKQuantileSketch",
    "RehistHistogram",
    "equi_width_histogram",
    "greedy_split_histogram",
    # offline optimal
    "min_buckets_for_error",
    "min_pwl_buckets_for_error",
    "optimal_error",
    "optimal_error_dp",
    "optimal_histogram",
    "optimal_pwl_error",
    "optimal_pwl_histogram",
    # extensions beyond the paper
    "summarize",
    "build_summary",
    "methods",
    "HistogramMeta",
    "ALGORITHM_REGISTRY",
    # service layer
    "Session",
    "StreamHandle",
    "StreamEngine",
    "StreamServer",
    "ServiceClient",
    "ServiceError",
    "plan_summary",
    "compression_profile",
    "merge_min_merge_summaries",
    "merge_pwl_summaries",
    "ParallelSummarizer",
    "ShardPlan",
    "summarize_parallel",
    "StreamFleet",
    "state_dict",
    "restore",
    "CheckpointStore",
    "FaultPlan",
    "ItemJournal",
    "RecoveryReport",
    "inject_bit_flip",
    "inject_torn_write",
    "L2MergeHistogram",
    "voptimal_error",
    "voptimal_histogram",
    "RelativeMinMergeHistogram",
    "RelativeMinIncrementHistogram",
    "optimal_relative_error",
    # metrics
    "l2_error",
    "linf_error",
    "mean_absolute_error",
    "series_linf_distance",
    # memory accounting
    "DEFAULT_MODEL",
    "MemoryModel",
    "MemoryReport",
    # exceptions
    "ReproError",
    "InvalidParameterError",
    "DomainError",
    "EmptySummaryError",
    "UnsupportedCheckpointError",
    "CheckpointCorruptionError",
    "InjectedFaultError",
    "BackpressureError",
    "__version__",
]
