"""Latency accounting for the load harness: percentiles over raw samples.

The harness records one wall-clock sample per completed operation and
summarizes them here with nearest-rank percentiles -- no buckets, no
interpolation, so a p99 over 10k samples is the actual 99th-percentile
request, not a histogram artifact.  (The irony of approximating our own
latency histograms while serving exact-error histograms would be too
much.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, int(round(q / 100.0 * len(sorted_samples) + 0.5)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass(frozen=True)
class LatencySummary:
    """p50/p99 (and friends) of one operation class, in milliseconds."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    total_seconds: float

    def to_dict(self) -> Dict[str, float]:
        """Plain data for the JSON report."""
        return {
            "count": self.count,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "total_seconds": self.total_seconds,
        }


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Collapse raw per-operation seconds into a :class:`LatencySummary`."""
    if not samples:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)
    total = sum(ordered)
    return LatencySummary(
        count=len(ordered),
        p50_ms=percentile(ordered, 50.0) * 1e3,
        p90_ms=percentile(ordered, 90.0) * 1e3,
        p99_ms=percentile(ordered, 99.0) * 1e3,
        mean_ms=total / len(ordered) * 1e3,
        max_ms=ordered[-1] * 1e3,
        total_seconds=total,
    )
