"""Load-generation harness with ledger-verified correctness.

Drives a live service endpoint (single server or cluster router) with
hundreds of concurrent mixed append/query clients over both wire
transports, records p50/p99 latencies, and verifies the final served
histograms bit-for-bit against the serial ``summarize()`` oracle --
including across worker kills, via per-batch ledgers that admit exactly
the consistent interpretations of an ambiguous failure.

``benchmarks/bench_load.py`` is the CLI front (the ``make load-slo`` /
CI gate); see ``docs/CLUSTER.md``.
"""

from repro.loadgen.harness import (
    ACKED,
    AMBIGUOUS,
    BatchRecord,
    ClientResult,
    LoadGenerator,
    LoadReport,
    LoadVerificationError,
    ledger_candidates,
    stream_values,
    verify_report,
    verify_stream,
)
from repro.loadgen.latency import (
    LatencySummary,
    percentile,
    summarize_latencies,
)

__all__ = [
    "ACKED",
    "AMBIGUOUS",
    "BatchRecord",
    "ClientResult",
    "LatencySummary",
    "LoadGenerator",
    "LoadReport",
    "LoadVerificationError",
    "ledger_candidates",
    "percentile",
    "stream_values",
    "summarize_latencies",
    "verify_report",
    "verify_stream",
]
