"""Load-generation harness: hundreds of concurrent clients, verified.

:class:`LoadGenerator` drives a live service (single-process server or
cluster router -- they speak the same protocol) with ``clients``
concurrent threads.  Each client owns one stream, alternates between the
JSON and binary transports, appends deterministic value batches, and
interleaves queries -- the mixed traffic shape of the CI ``load-slo``
gate (``benchmarks/bench_load.py``).

Every batch's fate is recorded in a per-stream ledger:

* ``acked`` -- the server acknowledged it, which (on a durable engine)
  means journaled + fsynced + applied.
* ``ambiguous`` -- the connection or worker failed mid-request; the
  batch may be fully applied or fully absent (batch atomicity), never
  torn.  The harness does **not** retry ambiguous appends (a retry could
  double-apply); it records them and moves on.

:func:`verify_stream` then checks the final served histogram against the
serial oracle (the one-shot ``summarize()`` path) for *every consistent
interpretation* of the ledger: all acked batches in order, each
ambiguous batch either fully present or fully absent.  A match proves
zero acknowledged appends were lost and no batch was torn -- even across
a worker kill and adoption.  Backpressure responses are safe to retry
(the engine rejects before enqueueing anything) and the harness does,
with backoff, counting the retries.

Determinism: stream contents depend only on the stream index, and each
stream's first value is ``universe - 1`` so the oracle's inferred
universe equals the service-side configuration.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import summarize
from repro.exceptions import BackpressureError, InvalidParameterError, ReproError
from repro.loadgen.latency import LatencySummary, summarize_latencies
from repro.service.client import ServiceClient, ServiceError
from repro.service.errors import UnavailableError

#: Ledger statuses (see module docs).
ACKED = "acked"
AMBIGUOUS = "ambiguous"

#: Refuse to enumerate oracle candidates past this many ambiguous
#: batches per stream (2^k interpretations); more than this means the
#: run saw repeated failures and should fail loudly, not combinatorially.
MAX_AMBIGUOUS = 6


class LoadVerificationError(ReproError):
    """The served state is inconsistent with every ledger interpretation."""


@dataclass
class BatchRecord:
    """One append batch and what became of it."""

    values: List[int]
    status: str = ACKED
    retries: int = 0


@dataclass
class ClientResult:
    """Everything one client thread did and observed."""

    stream: str
    method: str
    transport: str
    batches: List[BatchRecord] = field(default_factory=list)
    append_seconds: List[float] = field(default_factory=list)
    query_seconds: List[float] = field(default_factory=list)
    backpressure_retries: int = 0
    reconnects: int = 0
    errors: List[str] = field(default_factory=list)
    served_segments: Optional[list] = None
    served_error: Optional[float] = None
    served_items: Optional[int] = None

    @property
    def acked_items(self) -> int:
        """Total items in batches the server acknowledged."""
        return sum(
            len(b.values) for b in self.batches if b.status == ACKED
        )

    @property
    def ambiguous_batches(self) -> int:
        """Batches whose fate a link failure left unknown."""
        return sum(1 for b in self.batches if b.status == AMBIGUOUS)


@dataclass
class LoadReport:
    """Aggregate outcome of one load run (``to_dict`` feeds the JSON)."""

    clients: int
    batch_size: int
    batches_per_client: int
    elapsed_seconds: float
    append: LatencySummary
    query: LatencySummary
    acked_items: int
    ambiguous_batches: int
    backpressure_retries: int
    reconnects: int
    errors: List[str]
    per_client: List[ClientResult]

    @property
    def throughput_items_per_second(self) -> float:
        """Acked items per wall-clock second of the load phase."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.acked_items / self.elapsed_seconds

    def to_dict(self) -> dict:
        """Plain data for the JSON report (per-client detail elided)."""
        return {
            "clients": self.clients,
            "batch_size": self.batch_size,
            "batches_per_client": self.batches_per_client,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_items_per_second": self.throughput_items_per_second,
            "append": self.append.to_dict(),
            "query": self.query.to_dict(),
            "acked_items": self.acked_items,
            "ambiguous_batches": self.ambiguous_batches,
            "backpressure_retries": self.backpressure_retries,
            "reconnects": self.reconnects,
            "errors": self.errors[:20],
        }


def stream_values(
    stream_index: int, count: int, *, universe: int = 4096
) -> List[int]:
    """The deterministic value sequence of stream ``stream_index``.

    The first value is pinned to ``universe - 1`` so the one-shot
    oracle infers exactly the universe the service was configured with.
    """
    out = [universe - 1]
    for j in range(1, count):
        out.append((37 * j + 101 * stream_index + (j * j) % 89) % universe)
    return out


class LoadGenerator:
    """Drive one service endpoint with concurrent verified traffic.

    Parameters
    ----------
    host / port:
        The front listener (a :class:`~repro.service.StreamServer` or a
        :class:`~repro.service.cluster.ClusterRouter` -- indistinguishable
        on the wire).
    clients:
        Concurrent client threads; each owns stream ``load-<i>``.
    batches_per_client / batch_size:
        Workload volume: every client appends this many batches of this
        many values, querying its stream every ``query_every`` batches.
    methods:
        Registry methods cycled across clients (stream ``i`` uses
        ``methods[i % len(methods)]``).
    transports:
        Client transports cycled across clients (mixed JSON/binary by
        default; add ``"rest"`` -- with ``http_port`` -- to mix in
        clients speaking the HTTP facade of :mod:`repro.service.http`).
    http_port:
        The REST facade's port, required when ``transports`` includes
        ``"rest"``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        clients: int = 200,
        batches_per_client: int = 10,
        batch_size: int = 100,
        buckets: int = 16,
        universe: int = 4096,
        methods: Sequence[str] = ("min-merge", "min-increment"),
        transports: Sequence[str] = ("binary", "json"),
        query_every: int = 3,
        connect_retries: int = 20,
        http_port: Optional[int] = None,
    ) -> None:
        if "rest" in transports and http_port is None:
            raise InvalidParameterError(
                'transports includes "rest" but no http_port was given'
            )
        self.host = host
        self.port = port
        self.http_port = http_port
        self.clients = clients
        self.batches_per_client = batches_per_client
        self.batch_size = batch_size
        self.buckets = buckets
        self.universe = universe
        self.methods = tuple(methods)
        self.transports = tuple(transports)
        self.query_every = query_every
        self.connect_retries = connect_retries
        #: Live progress counter (batches acked or ambiguous so far,
        #: across all clients) -- the chaos scheduler in bench_load keys
        #: its mid-load worker kill off this.
        self.batches_done = 0
        self._progress_lock = threading.Lock()

    # -- client workload ------------------------------------------------------

    def stream_name(self, index: int) -> str:
        """The stream owned by client ``index`` (``load-0042`` style)."""
        return f"load-{index:04d}"

    def _connect(self, transport: str, result: ClientResult) -> ServiceClient:
        delay = 0.05
        for attempt in range(self.connect_retries):
            try:
                if transport == "rest":
                    return ServiceClient.from_url(
                        f"http://{self.host}:{self.http_port}"
                    )
                return ServiceClient(
                    self.host, self.port, transport=transport
                )
            except OSError as exc:
                if attempt == self.connect_retries - 1:
                    raise
                result.errors.append(f"connect: {exc}")
                time.sleep(delay)
                delay = min(delay * 1.6, 1.0)
        raise AssertionError("unreachable")

    def _tick(self) -> None:
        with self._progress_lock:
            self.batches_done += 1

    def _run_client(self, index: int, barrier: threading.Barrier) -> ClientResult:
        stream = self.stream_name(index)
        method = self.methods[index % len(self.methods)]
        transport = self.transports[index % len(self.transports)]
        result = ClientResult(stream=stream, method=method, transport=transport)
        config = {
            "method": method,
            "buckets": self.buckets,
            "universe": self.universe,
        }
        values = stream_values(
            index,
            self.batches_per_client * self.batch_size,
            universe=self.universe,
        )
        client = self._connect(transport, result)
        try:
            barrier.wait(timeout=60.0)
            for b in range(self.batches_per_client):
                batch = values[
                    b * self.batch_size : (b + 1) * self.batch_size
                ]
                record = BatchRecord(values=batch)
                client = self._append_one(client, result, record, config)
                result.batches.append(record)
                self._tick()
                if (b + 1) % self.query_every == 0:
                    client = self._query_one(client, result, transport)
            # Final verified read: drain, then snapshot the served state.
            client = self._final_query(client, result, transport)
        finally:
            client.close()
        return result

    def _append_one(
        self,
        client: ServiceClient,
        result: ClientResult,
        record: BatchRecord,
        config: dict,
    ) -> ServiceClient:
        """Append one batch, classifying its fate (see module docs)."""
        delay = 0.02
        while True:
            start = time.perf_counter()
            try:
                client.append(result.stream, record.values, **config)
                result.append_seconds.append(time.perf_counter() - start)
                return client
            except BackpressureError:
                # Nothing was enqueued: the same batch is safe to retry.
                record.retries += 1
                result.backpressure_retries += 1
                time.sleep(delay)
                delay = min(delay * 1.6, 0.5)
            except UnavailableError as exc:
                # Worker died mid-request; adoption is underway.  The
                # one error that is never auto-retried for appends.
                record.status = AMBIGUOUS
                result.errors.append(f"{result.stream}: {exc}")
                return client
            except (ConnectionError, OSError) as exc:
                # The *front* connection broke; the request outcome is
                # unknowable from here.
                record.status = AMBIGUOUS
                result.errors.append(f"{result.stream}: reconnect after {exc}")
                result.reconnects += 1
                client.close()
                return self._connect(result.transport, result)

    def _query_one(
        self, client: ServiceClient, result: ClientResult, transport: str
    ):
        start = time.perf_counter()
        try:
            client.query(result.stream)
            result.query_seconds.append(time.perf_counter() - start)
        except ServiceError as exc:
            result.errors.append(f"{result.stream}: query: {exc}")
        except (ConnectionError, OSError) as exc:
            result.errors.append(f"{result.stream}: query reconnect: {exc}")
            result.reconnects += 1
            client.close()
            client = self._connect(transport, result)
        return client

    def _final_query(
        self, client: ServiceClient, result: ClientResult, transport: str
    ):
        delay = 0.05
        for _ in range(10):
            try:
                served = client.query(result.stream, drain=True).histogram
                result.served_segments = _segments_as_lists(served)
                result.served_error = served.error
                result.served_items = served.meta.items_seen
                return client
            except ServiceError as exc:
                result.errors.append(f"{result.stream}: final query: {exc}")
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
            except (ConnectionError, OSError) as exc:
                result.errors.append(
                    f"{result.stream}: final query reconnect: {exc}"
                )
                result.reconnects += 1
                client.close()
                client = self._connect(transport, result)
        raise LoadVerificationError(
            f"stream {result.stream}: final query never succeeded "
            f"(last errors: {result.errors[-3:]})"
        )

    # -- orchestration --------------------------------------------------------

    def run(self) -> LoadReport:
        """Run the full workload; returns the aggregated report."""
        barrier = threading.Barrier(self.clients + 1)
        results: List[Optional[ClientResult]] = [None] * self.clients
        failures: List[BaseException] = []

        def worker(i: int) -> None:
            try:
                results[i] = self._run_client(i, barrier)
            except BaseException as exc:  # surfaced after join
                failures.append(exc)
                try:
                    barrier.abort()
                except Exception:
                    pass

        threads = [
            threading.Thread(
                target=worker, args=(i,), name=f"loadgen-{i}", daemon=True
            )
            for i in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=120.0)  # all clients connected: start the clock
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
        done = [r for r in results if r is not None]
        return LoadReport(
            clients=self.clients,
            batch_size=self.batch_size,
            batches_per_client=self.batches_per_client,
            elapsed_seconds=elapsed,
            append=summarize_latencies(
                [s for r in done for s in r.append_seconds]
            ),
            query=summarize_latencies(
                [s for r in done for s in r.query_seconds]
            ),
            acked_items=sum(r.acked_items for r in done),
            ambiguous_batches=sum(r.ambiguous_batches for r in done),
            backpressure_retries=sum(r.backpressure_retries for r in done),
            reconnects=sum(r.reconnects for r in done),
            errors=[e for r in done for e in r.errors],
            per_client=done,
        )


# -- verification -------------------------------------------------------------


def _segments_as_lists(histogram) -> List[list]:
    """``[[beg, end, left, right], ...]`` -- the bit-identity comparison form."""
    return [[s.beg, s.end, s.left, s.right] for s in histogram.segments]


def ledger_candidates(
    batches: Sequence[BatchRecord],
) -> List[Tuple[Tuple[int, ...], List[int]]]:
    """Every consistent value sequence a ledger admits.

    Returns ``(included_ambiguous_indices, values)`` pairs: acked
    batches always present in order, each ambiguous batch either fully
    present (at its position) or fully absent.
    """
    ambiguous = [i for i, b in enumerate(batches) if b.status == AMBIGUOUS]
    if len(ambiguous) > MAX_AMBIGUOUS:
        raise LoadVerificationError(
            f"{len(ambiguous)} ambiguous batches on one stream "
            f"(> {MAX_AMBIGUOUS}); the run is too degraded to verify"
        )
    out = []
    for included in itertools.chain.from_iterable(
        itertools.combinations(ambiguous, k)
        for k in range(len(ambiguous) + 1)
    ):
        chosen = set(included)
        seq: List[int] = []
        for i, batch in enumerate(batches):
            if batch.status == ACKED or i in chosen:
                seq.extend(batch.values)
        out.append((tuple(sorted(chosen)), seq))
    return out


def verify_stream(result: ClientResult, *, buckets: int) -> dict:
    """Check one stream's served state against the serial oracle.

    The served histogram must be bit-identical (segments and error) to
    ``summarize()`` of at least one consistent ledger interpretation,
    and the served ``items_seen`` must cover every acked item.  Raises
    :class:`LoadVerificationError` otherwise; returns a small summary
    of which interpretation matched.
    """
    if result.served_segments is None:
        raise LoadVerificationError(
            f"stream {result.stream}: no final served state recorded"
        )
    if result.served_items is not None and result.served_items < result.acked_items:
        raise LoadVerificationError(
            f"stream {result.stream}: served items_seen "
            f"{result.served_items} < acked {result.acked_items} -- "
            "acknowledged appends were lost"
        )
    for included, seq in ledger_candidates(result.batches):
        oracle = summarize(seq, buckets, method=result.method)
        if (
            _segments_as_lists(oracle) == result.served_segments
            and oracle.error == result.served_error
            and len(seq) == result.served_items
        ):
            return {
                "stream": result.stream,
                "method": result.method,
                "items": len(seq),
                "ambiguous_included": list(included),
                "ambiguous_total": result.ambiguous_batches,
            }
    raise LoadVerificationError(
        f"stream {result.stream} ({result.method}): served histogram "
        f"matches no consistent ledger interpretation "
        f"({result.ambiguous_batches} ambiguous batches, "
        f"{result.acked_items} acked items, served error "
        f"{result.served_error}, served items {result.served_items})"
    )


def verify_report(report: LoadReport, *, buckets: int) -> Dict[str, dict]:
    """Verify every stream of a load run; ``{stream: match_info}``."""
    return {
        r.stream: verify_stream(r, buckets=buckets)
        for r in report.per_client
    }
