"""Workload data: synthetic generators and the paper's three datasets."""

from repro.data.generators import (
    SeedLike,
    ar1_process,
    brownian_walk,
    mixture_stream,
    sine_wave,
    spike_train,
    step_function,
    uniform_noise,
)
from repro.data.datasets import (
    DEFAULT_UNIVERSE,
    DatasetSpec,
    brownian,
    dataset_by_name,
    dow_jones,
    list_datasets,
    merced,
)
from repro.data.quantize import quantize_to_universe
from repro.data.io import load_quantized, load_series

__all__ = [
    "SeedLike",
    "ar1_process",
    "brownian_walk",
    "mixture_stream",
    "sine_wave",
    "spike_train",
    "step_function",
    "uniform_noise",
    "DEFAULT_UNIVERSE",
    "DatasetSpec",
    "brownian",
    "dataset_by_name",
    "dow_jones",
    "list_datasets",
    "merced",
    "quantize_to_universe",
    "load_series",
    "load_quantized",
]
