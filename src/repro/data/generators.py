"""Seeded synthetic stream generators.

All generators return plain Python lists of floats (quantize separately via
:func:`repro.data.quantize.quantize_to_universe`) and take an explicit
``seed`` so every experiment, test, and benchmark is reproducible.  numpy
is used for the heavy lifting; the outputs are ordinary lists for a stable
public type, and ``extend()`` coerces them to an ndarray once so ingestion
still runs through the vectorized batch kernels
(:mod:`repro.core.batch`).  Wrap a generator's output in ``np.asarray``
yourself to skip even that single coercion.

``seed`` accepts either an int or a live :class:`numpy.random.Generator`.
Passing a Generator lets a composite workload (for example one
:class:`~repro.scenarios.ScenarioSpec`) derive every stream, regime, and
schedule from a single spec-level seed: the caller spawns child
generators once and threads them through, so the whole run is
reproducible byte-for-byte from one number (pinned by the regression
suite in ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import InvalidParameterError

#: Anything accepted as a ``seed=``: an int (a fresh Generator is created
#: from it) or an existing Generator (used as-is, advancing its state).
SeedLike = Union[int, np.random.Generator]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_length(n: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"length must be >= 1, got {n}")


def brownian_walk(n: int, *, seed: SeedLike = 0, step: float = 1.0) -> list[float]:
    """One-dimensional random walk (the paper's *Brownian* dataset shape).

    Gaussian steps of standard deviation ``step``, starting at 0.
    """
    _check_length(n)
    rng = _rng(seed)
    steps = rng.normal(0.0, step, size=n)
    steps[0] = 0.0
    return np.cumsum(steps).tolist()


def uniform_noise(
    n: int, *, seed: SeedLike = 0, low: float = 0.0, high: float = 1.0
) -> list[float]:
    """I.i.d. uniform values in ``[low, high)`` -- a worst case for bucketing."""
    _check_length(n)
    if high <= low:
        raise InvalidParameterError(f"need low < high, got [{low}, {high})")
    return _rng(seed).uniform(low, high, size=n).tolist()


def sine_wave(
    n: int,
    *,
    seed: SeedLike = 0,
    periods: float = 4.0,
    noise: float = 0.0,
    amplitude: float = 1.0,
) -> list[float]:
    """Sinusoid with optional Gaussian noise -- smooth, PWL-friendly data."""
    _check_length(n)
    t = np.linspace(0.0, 2.0 * np.pi * periods, n)
    wave = amplitude * np.sin(t)
    if noise > 0.0:
        wave = wave + _rng(seed).normal(0.0, noise, size=n)
    return wave.tolist()


def step_function(
    n: int,
    *,
    seed: SeedLike = 0,
    steps: int = 16,
    low: float = 0.0,
    high: float = 1.0,
    jitter: float = 0.0,
) -> list[float]:
    """Piecewise-constant levels -- the best case for serial histograms.

    ``steps`` random levels over equal-length plateaus, optionally wiggled
    by Gaussian ``jitter``.
    """
    _check_length(n)
    if steps < 1:
        raise InvalidParameterError(f"steps must be >= 1, got {steps}")
    rng = _rng(seed)
    levels = rng.uniform(low, high, size=steps)
    series = np.repeat(levels, int(np.ceil(n / steps)))[:n]
    if jitter > 0.0:
        series = series + rng.normal(0.0, jitter, size=n)
    return series.tolist()


def spike_train(
    n: int,
    *,
    seed: SeedLike = 0,
    spike_probability: float = 0.01,
    base: float = 0.0,
    spike_height: float = 10.0,
    noise: float = 0.1,
) -> list[float]:
    """Flat baseline with rare large spikes -- the anomaly-detection shape.

    This is the workload the paper's monitoring motivation cares about:
    L-infinity histograms must keep the spikes visible while L2-oriented
    summaries may smooth them away.
    """
    _check_length(n)
    if not 0.0 <= spike_probability <= 1.0:
        raise InvalidParameterError(
            f"spike_probability must lie in [0, 1], got {spike_probability}"
        )
    rng = _rng(seed)
    series = rng.normal(base, noise, size=n)
    spikes = rng.random(n) < spike_probability
    series[spikes] += spike_height * rng.uniform(0.5, 1.0, size=int(spikes.sum()))
    return series.tolist()


def ar1_process(
    n: int, *, seed: SeedLike = 0, phi: float = 0.98, sigma: float = 1.0
) -> list[float]:
    """AR(1) process ``x_t = phi x_{t-1} + N(0, sigma)`` -- correlated noise."""
    _check_length(n)
    if not -1.0 < phi < 1.0:
        raise InvalidParameterError(f"phi must lie in (-1, 1), got {phi}")
    rng = _rng(seed)
    shocks = rng.normal(0.0, sigma, size=n)
    series = np.empty(n)
    series[0] = shocks[0]
    for i in range(1, n):
        series[i] = phi * series[i - 1] + shocks[i]
    return series.tolist()


def mixture_stream(n: int, *, seed: SeedLike = 0) -> list[float]:
    """Concatenation of heterogeneous regimes (trend, plateau, noise, spikes).

    Useful for exercising bucket-boundary placement: a good max-error
    histogram spends buckets on the busy regimes and almost none on the
    plateaus.
    """
    _check_length(n)
    rng = _rng(seed)
    quarter = max(1, n // 4)
    parts = [
        np.linspace(0.0, 50.0, quarter) + rng.normal(0, 0.5, quarter),
        np.full(quarter, 50.0) + rng.normal(0, 0.2, quarter),
        50.0 + np.cumsum(rng.normal(0, 1.5, quarter)),
        rng.uniform(0.0, 100.0, n - 3 * quarter),
    ]
    return np.concatenate(parts)[:n].tolist()
