"""Quantization of raw series into the paper's integer value domain.

Section 5: "All the values are integers in the range [0, 2^15 - 1]".  The
generators produce float series; this module maps them affinely onto the
integer universe ``[0, U)`` so every algorithm sees the same domain the
paper used.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


def quantize_to_universe(values: Sequence[float], universe: int) -> list[int]:
    """Affinely map ``values`` onto integers in ``[0, universe)``.

    A constant input maps to the midpoint of the domain.  The mapping is
    monotone, so the *shape* of the series (trends, spikes, crossings) is
    preserved exactly; only the scale changes.
    """
    if universe < 2:
        raise InvalidParameterError(f"universe must be at least 2, got {universe}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return []
    lo = float(arr.min())
    hi = float(arr.max())
    if hi == lo:
        return [universe // 2] * arr.size
    scaled = (arr - lo) / (hi - lo) * (universe - 1)
    return [int(v) for v in np.rint(scaled).astype(np.int64)]
