"""Loading real series from files.

The paper's datasets came from flat files (StatLib's DJIA closes, CDEC's
river gauge exports); adopters with the originals -- or any one-column
numeric data -- load them here and feed the result straight into the
algorithms, optionally quantizing into the paper's integer domain.  The
loaders return lists; ``extend()`` coerces a list to an ndarray once and
ingests it through the chunked batch kernels (:mod:`repro.core.batch`).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Optional, Union

from repro.data.quantize import quantize_to_universe
from repro.exceptions import InvalidParameterError

PathLike = Union[str, pathlib.Path]


def load_series(
    path: PathLike,
    *,
    column: Optional[Union[int, str]] = None,
    delimiter: str = ",",
    skip_rows: int = 0,
    limit: Optional[int] = None,
) -> list[float]:
    """Load one numeric column from a text/CSV file.

    Parameters
    ----------
    path:
        File to read.  Blank lines are skipped.
    column:
        ``None`` for single-column files, a 0-based index, or a header
        name (the first row is then treated as the header).
    delimiter:
        Field separator.
    skip_rows:
        Leading rows to drop (before any header handling).
    limit:
        Stop after this many values.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise InvalidParameterError(f"no such file: {path}")
    values: list[float] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = (row for row in reader if any(cell.strip() for cell in row))
        for _ in range(skip_rows):
            next(rows, None)
        index: Optional[int]
        if isinstance(column, str):
            header = next(rows, None)
            if header is None:
                raise InvalidParameterError(f"{path}: empty file")
            stripped = [cell.strip() for cell in header]
            try:
                index = stripped.index(column)
            except ValueError:
                raise InvalidParameterError(
                    f"{path}: no column named {column!r}; "
                    f"header was {stripped}"
                ) from None
        else:
            index = column
        for line_no, row in enumerate(rows, start=1):
            pick = index if index is not None else 0
            if pick >= len(row):
                raise InvalidParameterError(
                    f"{path}: row {line_no} has no column {pick}"
                )
            cell = row[pick]
            try:
                values.append(float(cell))
            except ValueError:
                raise InvalidParameterError(
                    f"{path}: non-numeric value {cell!r} at row {line_no}"
                ) from None
            if limit is not None and len(values) >= limit:
                break
    if not values:
        raise InvalidParameterError(f"{path}: no values found")
    return values


def load_quantized(
    path: PathLike,
    *,
    universe: int = 1 << 15,
    column: Optional[Union[int, str]] = None,
    delimiter: str = ",",
    skip_rows: int = 0,
    limit: Optional[int] = None,
) -> list[int]:
    """Load a series and quantize it to integers in ``[0, universe)``.

    This reproduces the paper's preprocessing exactly: "All the values are
    integers in the range [0, 2^15 - 1]".
    """
    series = load_series(
        path,
        column=column,
        delimiter=delimiter,
        skip_rows=skip_rows,
        limit=limit,
    )
    return quantize_to_universe(series, universe)
