"""The paper's three evaluation datasets (Section 5).

* *Dow-Jones* -- DJIA daily closes 1900-1993 (StatLib), 25771 points.
* *Merced* -- hourly flow of the Merced river at Happy Isles (CDEC),
  65536 points.
* *Brownian* -- synthetic 1-D random walk, 1 million points.

The two real datasets are not redistributable/reachable offline, so this
module generates seeded synthetic proxies with the same length, domain and
qualitative character (DESIGN.md item 3):

* the DJIA proxy is a geometric random walk with mild drift and volatility
  clustering -- trending and locally smooth, which is what makes PWL
  buckets pay off in Figure 9;
* the Merced proxy superimposes an annual snowmelt seasonality, a diurnal
  cycle, occasional flood spikes, and noise on a baseline flow -- bursty
  data that rewards adaptive bucket boundaries.

All three are quantized to integers in ``[0, 2^15)`` exactly as the paper
states, so every algorithm sees the same domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.data.quantize import quantize_to_universe
from repro.exceptions import InvalidParameterError

#: The paper's value domain: "integers in the range [0, 2^15 - 1]".
DEFAULT_UNIVERSE = 1 << 15

#: Dataset lengths quoted in Section 5.
DOW_JONES_LENGTH = 25771
MERCED_LENGTH = 65536
BROWNIAN_LENGTH = 1_000_000


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: name, paper length, and the loader callable."""

    name: str
    paper_length: int
    description: str
    loader: Callable[..., list[int]]


def dow_jones(
    n: Optional[int] = None, *, seed: int = 1900, universe: int = DEFAULT_UNIVERSE
) -> list[int]:
    """Synthetic proxy for the DJIA daily-close series (25771 points).

    Geometric random walk: log-returns are Gaussian with a small positive
    drift and GARCH-flavoured volatility clustering (slowly varying sigma),
    mirroring the index's long upward trend punctuated by turbulent
    stretches.
    """
    n = _resolve_length(n, DOW_JONES_LENGTH)
    rng = np.random.default_rng(seed)
    # Volatility follows a slow AR(1) in log-space: calm and stormy eras.
    log_vol = np.empty(n)
    log_vol[0] = np.log(0.01)
    vol_shocks = rng.normal(0.0, 0.08, size=n)
    for i in range(1, n):
        log_vol[i] = 0.995 * log_vol[i - 1] + 0.005 * np.log(0.01) + vol_shocks[i]
    sigma = np.exp(log_vol)
    returns = rng.normal(0.0002, 1.0, size=n) * sigma
    log_price = np.cumsum(returns) + np.log(40.0)
    return quantize_to_universe(np.exp(log_price), universe)


def merced(
    n: Optional[int] = None, *, seed: int = 1997, universe: int = DEFAULT_UNIVERSE
) -> list[int]:
    """Synthetic proxy for the Merced river hourly flow (65536 points).

    Annual snowmelt seasonality (peaking late spring), a faint diurnal
    cycle, multiplicative noise, and occasional flood spikes with fast
    exponential decay.  Flows are non-negative and strongly bursty.
    """
    n = _resolve_length(n, MERCED_LENGTH)
    rng = np.random.default_rng(seed)
    hours = np.arange(n)
    year = 24.0 * 365.25
    # Snowmelt season: raised-cosine bump peaking around hour-of-year ~0.45.
    phase = (hours % year) / year
    seasonal = np.clip(np.cos(2 * np.pi * (phase - 0.45)), 0.0, None) ** 3
    diurnal = 0.05 * np.sin(2 * np.pi * hours / 24.0)
    base = 30.0 + 1500.0 * seasonal * (1.0 + diurnal)
    noise = np.exp(rng.normal(0.0, 0.15, size=n))
    flow = base * noise
    # Flood events: Poisson arrivals, sharp rise, exponential recession.
    n_events = max(1, int(n / 6000))
    starts = rng.integers(0, n, size=n_events)
    for start in starts:
        height = rng.uniform(2000.0, 9000.0)
        length = int(rng.uniform(24, 24 * 14))
        end = min(n, start + length)
        decay = np.exp(-np.arange(end - start) / (length / 4.0))
        flow[start:end] += height * decay
    return quantize_to_universe(flow, universe)


def brownian(
    n: Optional[int] = None, *, seed: int = 42, universe: int = DEFAULT_UNIVERSE
) -> list[int]:
    """The paper's synthetic Brownian dataset (1 million points).

    A plain Gaussian random walk quantized to the integer domain -- this
    one is not a proxy; it matches the paper's construction directly.
    """
    n = _resolve_length(n, BROWNIAN_LENGTH)
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, 1.0, size=n)
    steps[0] = 0.0
    return quantize_to_universe(np.cumsum(steps), universe)


_REGISTRY = {
    "dow-jones": DatasetSpec(
        "dow-jones", DOW_JONES_LENGTH,
        "DJIA daily closes proxy (trending geometric walk)", dow_jones,
    ),
    "merced": DatasetSpec(
        "merced", MERCED_LENGTH,
        "Merced river hourly flow proxy (seasonal + flood spikes)", merced,
    ),
    "brownian": DatasetSpec(
        "brownian", BROWNIAN_LENGTH,
        "1-D Gaussian random walk (as in the paper)", brownian,
    ),
}


def list_datasets() -> list[DatasetSpec]:
    """All registered datasets, in the paper's order."""
    return list(_REGISTRY.values())


def dataset_by_name(name: str) -> DatasetSpec:
    """Look a dataset up by its registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None


def _resolve_length(n: Optional[int], default: int) -> int:
    if n is None:
        return default
    if n < 1:
        raise InvalidParameterError(f"length must be >= 1, got {n}")
    return n
