"""The scenario DSL: a declarative description of one streaming workload.

A :class:`ScenarioSpec` names everything that shapes a workload before a
single value is generated:

* **arrival** -- how items arrive over time (steady batches, bursty
  trickle-then-flood, heavy-tailed Pareto batch sizes);
* **values** -- the value process (any generator from
  :mod:`repro.data.generators`, plus ``constant`` and the sparse/skewed
  ``zipf`` universe), optional distribution drift, and regime switches;
* **ordering** -- the arrival order of the generated values (natural,
  sorted, reversed, shuffled, adversarial bucket-boundary interleaving)
  plus a bounded out-of-order displacement fraction for the
  sliding-window variants;
* **tenants** -- how many streams the scenario spans and how skewed the
  hot/cold item split is;
* **faults** -- an optional :class:`~repro.resilience.FaultPlan` table
  injected into the checkpointed ingest cycle.

Specs are plain frozen dataclasses with an exact dict/YAML round trip
(``from_dict(to_dict(spec)) == spec``); unknown keys are rejected so a
typo in a scenario file fails loudly instead of silently changing the
workload.  Everything downstream -- generation
(:mod:`repro.scenarios.generate`), execution
(:mod:`repro.scenarios.runner`), and the differential conformance suite
(:mod:`repro.scenarios.conformance`) -- is a pure function of the spec,
so one spec-level ``seed`` reproduces a run byte-for-byte.

YAML support needs PyYAML; the dict/JSON forms work without it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Optional, Tuple

from repro.exceptions import InvalidParameterError

#: Recognized arrival patterns (see :class:`ArrivalSpec`).
ARRIVAL_PATTERNS = ("steady", "bursty", "heavy-tailed")

#: Recognized value processes (see :class:`ValueSpec`).  All but the last
#: two map onto :mod:`repro.data.generators`.
VALUE_PROCESSES = (
    "brownian",
    "uniform",
    "sine",
    "step",
    "spikes",
    "ar1",
    "mixture",
    "constant",
    "zipf",
)

#: Recognized orderings (see :class:`OrderingSpec`).
ORDERINGS = ("natural", "sorted", "reverse", "shuffled", "adversarial")

#: Recognized drift kinds (see :class:`DriftSpec`).
DRIFT_KINDS = ("none", "linear", "jump")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)


def _only_known_keys(data: Mapping, cls) -> dict:
    """``data`` restricted to ``cls`` fields; unknown keys raise."""
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    _require(
        not unknown,
        f"unknown {cls.__name__} key(s) {unknown}; known: {sorted(known)}",
    )
    return dict(data)


@dataclass(frozen=True)
class ArrivalSpec:
    """How items arrive: a deterministic schedule of append-batch sizes.

    The summaries have no wall clock, so "arrival" means *batching*: the
    schedule decides how many items each append carries, which is exactly
    what the batched ingest kernels, the wire protocol, and the service
    queue see.  Patterns:

    * ``steady`` -- every batch carries ``batch`` items;
    * ``bursty`` -- ``trickle``-sized batches, except every
      ``burst_every``-th batch floods ``batch`` items at once;
    * ``heavy-tailed`` -- Pareto(``alpha``)-distributed batch sizes with
      mean scale ``batch``, clipped to ``[1, max_batch]``.
    """

    pattern: str = "steady"
    batch: int = 256
    trickle: int = 16
    burst_every: int = 8
    alpha: float = 1.5
    max_batch: int = 65_536

    def __post_init__(self) -> None:
        _require(
            self.pattern in ARRIVAL_PATTERNS,
            f"arrival pattern must be one of {ARRIVAL_PATTERNS}, "
            f"got {self.pattern!r}",
        )
        _require(self.batch >= 1, f"batch must be >= 1, got {self.batch}")
        _require(self.trickle >= 1, f"trickle must be >= 1, got {self.trickle}")
        _require(
            self.burst_every >= 1,
            f"burst_every must be >= 1, got {self.burst_every}",
        )
        _require(self.alpha > 0.0, f"alpha must be > 0, got {self.alpha}")
        _require(
            self.max_batch >= self.batch,
            f"max_batch {self.max_batch} smaller than batch {self.batch}",
        )


@dataclass(frozen=True)
class DriftSpec:
    """Distribution drift layered over the value process.

    ``linear`` adds a ramp from 0 to ``magnitude`` across the stream;
    ``jump`` adds ``magnitude`` to every value past fraction ``at`` (a
    regime-switch step in the level).  Magnitudes are in pre-quantization
    value units, so a magnitude comparable to the process's own range
    visibly re-shapes the stream.
    """

    kind: str = "none"
    magnitude: float = 0.0
    at: float = 0.5

    def __post_init__(self) -> None:
        _require(
            self.kind in DRIFT_KINDS,
            f"drift kind must be one of {DRIFT_KINDS}, got {self.kind!r}",
        )
        _require(0.0 <= self.at <= 1.0, f"at must lie in [0, 1], got {self.at}")


@dataclass(frozen=True)
class RegimeSpec:
    """One regime of a regime-switching value process."""

    process: str = "brownian"
    fraction: float = 1.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(
            self.process in VALUE_PROCESSES,
            f"process must be one of {VALUE_PROCESSES}, got {self.process!r}",
        )
        _require(
            self.fraction > 0.0,
            f"regime fraction must be > 0, got {self.fraction}",
        )


@dataclass(frozen=True)
class ValueSpec:
    """The value process: what the stream's numbers look like.

    ``process`` names one generator (``params`` are passed through to
    it); a non-empty ``regimes`` tuple overrides it with a concatenation
    of per-regime processes, fractions normalized over the stream length
    -- the regime-switch workloads that stress bucket-boundary placement.
    ``zipf`` draws from a sparse ``support``-point universe with
    Zipf(``skew``) weights (the Chen--Indyk--Wagner sparse/skewed shape);
    ``constant`` emits ``params["level"]`` everywhere.
    """

    process: str = "brownian"
    params: dict = field(default_factory=dict)
    drift: DriftSpec = field(default_factory=DriftSpec)
    regimes: Tuple[RegimeSpec, ...] = ()

    def __post_init__(self) -> None:
        _require(
            self.process in VALUE_PROCESSES,
            f"process must be one of {VALUE_PROCESSES}, got {self.process!r}",
        )
        object.__setattr__(
            self,
            "regimes",
            tuple(
                r if isinstance(r, RegimeSpec) else RegimeSpec(**r)
                for r in self.regimes
            ),
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValueSpec":
        """Build from the plain-dict form; unknown keys raise."""
        data = _only_known_keys(data, cls)
        if "drift" in data and isinstance(data["drift"], Mapping):
            data["drift"] = DriftSpec(**_only_known_keys(data["drift"], DriftSpec))
        if "regimes" in data:
            data["regimes"] = tuple(
                RegimeSpec(**_only_known_keys(r, RegimeSpec))
                if isinstance(r, Mapping)
                else r
                for r in data["regimes"]
            )
        return cls(**data)


@dataclass(frozen=True)
class OrderingSpec:
    """The arrival order of the generated values.

    ``kind`` permutes the whole stream; ``adversarial`` interleaves the
    sorted extremes (smallest, largest, second-smallest, ...) so every
    adjacent pair spans nearly the full value range -- the worst case
    for bucket-boundary placement.  ``out_of_order`` then locally
    displaces that fraction of items by up to ``displacement`` positions
    (a bounded-delay timestamp shuffle, the shape the sliding-window
    variants must absorb).  Every transform preserves the value multiset.
    """

    kind: str = "natural"
    out_of_order: float = 0.0
    displacement: int = 64

    def __post_init__(self) -> None:
        _require(
            self.kind in ORDERINGS,
            f"ordering must be one of {ORDERINGS}, got {self.kind!r}",
        )
        _require(
            0.0 <= self.out_of_order <= 1.0,
            f"out_of_order must lie in [0, 1], got {self.out_of_order}",
        )
        _require(
            self.displacement >= 1,
            f"displacement must be >= 1, got {self.displacement}",
        )


@dataclass(frozen=True)
class TenantsSpec:
    """Multi-tenant shape: stream count and hot/cold item skew.

    ``hot_fraction`` of the streams (at least one, when positive) are
    *hot* and together own ``hot_weight`` of the scenario's items; the
    rest split the remainder evenly.  ``streams=1`` (the default) is a
    single-tenant scenario.
    """

    streams: int = 1
    hot_fraction: float = 0.0
    hot_weight: float = 0.0

    def __post_init__(self) -> None:
        _require(self.streams >= 1, f"streams must be >= 1, got {self.streams}")
        _require(
            0.0 <= self.hot_fraction <= 1.0,
            f"hot_fraction must lie in [0, 1], got {self.hot_fraction}",
        )
        _require(
            0.0 <= self.hot_weight <= 1.0,
            f"hot_weight must lie in [0, 1], got {self.hot_weight}",
        )
        _require(
            (self.hot_fraction > 0.0) == (self.hot_weight > 0.0),
            "hot_fraction and hot_weight must be zero or non-zero together",
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible workload description.

    ``length`` is the *total* item count across all tenant streams;
    ``universe`` is the integer value domain ``[0, U)`` every process is
    quantized into (the paper's Section 5 setup); ``window`` routes the
    run to the sliding-window variants; ``faults`` is a
    :class:`~repro.resilience.FaultPlan` budget table injected into the
    checkpointed ingest cycle (empty = no faults).
    """

    name: str
    length: int = 10_000
    seed: int = 0
    buckets: int = 32
    universe: int = 4_096
    epsilon: float = 0.1
    window: Optional[int] = None
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    values: ValueSpec = field(default_factory=ValueSpec)
    ordering: OrderingSpec = field(default_factory=OrderingSpec)
    tenants: TenantsSpec = field(default_factory=TenantsSpec)
    faults: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        _require(self.length >= 1, f"length must be >= 1, got {self.length}")
        _require(self.buckets >= 1, f"buckets must be >= 1, got {self.buckets}")
        _require(
            self.universe >= 2, f"universe must be >= 2, got {self.universe}"
        )
        _require(self.epsilon > 0.0, f"epsilon must be > 0, got {self.epsilon}")
        if self.window is not None:
            _require(self.window >= 1, f"window must be >= 1, got {self.window}")
        _require(
            self.length >= self.tenants.streams,
            f"length {self.length} smaller than stream count "
            f"{self.tenants.streams}",
        )

    # -- round trip -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form; ``from_dict`` inverts it exactly."""
        data = asdict(self)
        data["values"]["regimes"] = [asdict(r) for r in self.values.regimes]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Build a spec from the :meth:`to_dict` form; unknown keys raise."""
        data = _only_known_keys(data, cls)
        if isinstance(data.get("arrival"), Mapping):
            data["arrival"] = ArrivalSpec(
                **_only_known_keys(data["arrival"], ArrivalSpec)
            )
        if isinstance(data.get("values"), Mapping):
            data["values"] = ValueSpec.from_dict(data["values"])
        if isinstance(data.get("ordering"), Mapping):
            data["ordering"] = OrderingSpec(
                **_only_known_keys(data["ordering"], OrderingSpec)
            )
        if isinstance(data.get("tenants"), Mapping):
            data["tenants"] = TenantsSpec(
                **_only_known_keys(data["tenants"], TenantsSpec)
            )
        return cls(**data)

    def to_yaml(self) -> str:
        """YAML form of :meth:`to_dict` (needs PyYAML)."""
        yaml = _yaml()
        return yaml.safe_dump(self.to_dict(), sort_keys=False)

    @classmethod
    def from_yaml(cls, text: str) -> "ScenarioSpec":
        """Parse a YAML scenario document (needs PyYAML)."""
        yaml = _yaml()
        data = yaml.safe_load(text)
        _require(
            isinstance(data, Mapping),
            f"a scenario document must be a mapping, got {type(data).__name__}",
        )
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        """Read one spec from a YAML file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_yaml(handle.read())

    def save(self, path) -> None:
        """Write the spec as YAML."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_yaml())

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy with top-level fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    @property
    def stream_names(self) -> Tuple[str, ...]:
        """The tenant stream names, in generation order."""
        return tuple(
            f"{self.name}/{i:03d}" for i in range(self.tenants.streams)
        )


def _yaml():
    """Import PyYAML lazily with an actionable error when absent."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - test env ships pyyaml
        raise InvalidParameterError(
            "YAML scenario files need PyYAML (pip install pyyaml); "
            "dict/JSON specs via ScenarioSpec.from_dict work without it"
        ) from exc
    return yaml
