"""Execute a :class:`ScenarioSpec` and measure it: the workload simulator.

:class:`ScenarioRunner` drives the workload a spec describes against one
of two targets:

* ``target="local"`` -- the library path: every tenant stream is built
  via :func:`repro.api.build_summary` (honoring ``backend=`` and, for
  one-shot parallel ingest, ``workers=``) and fed batch-by-batch on the
  spec's arrival schedule, through the same ephemeral
  :class:`~repro.service.Session` route ``summarize()`` uses;
* ``target="service"`` -- the wire path: an ephemeral
  :class:`~repro.service.StreamServer` (or an existing endpoint via
  ``host``/``port``) ingests the same batches over a negotiated
  :class:`~repro.service.ServiceClient` connection.

Either way the result is a :class:`ScenarioReport`: per-stream error
verified against the exact offline oracle
(:func:`repro.offline.optimal.optimal_error`), the method's theoretical
bound checked, accounted memory, throughput, and per-batch append
latency percentiles reusing the load harness's
:func:`~repro.loadgen.summarize_latencies`.

Scenarios with a non-empty ``faults`` table additionally run the
checkpointed crash -> recover cycle (reusing
:class:`~repro.resilience.FaultPlan` and
:class:`~repro.resilience.CheckpointStore`) and record whether recovery
was bit-identical to the undisturbed run -- turning every fault scenario
into a standing resilience check.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import (
    BACKEND_METHODS,
    PARALLEL_METHODS,
    build_summary,
    streaming_methods,
)
from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.loadgen import LatencySummary, summarize_latencies
from repro.offline.optimal import optimal_error
from repro.scenarios.generate import generate, schedules
from repro.scenarios.spec import ScenarioSpec

#: Per-method (error-factor, bucket-factor) guarantees the report checks:
#: realized error <= factor * optimal B-bucket error, buckets used <=
#: bucket_factor * B.  The (1, 2) merge family trades buckets for
#: exactness; the (1+eps, 1) ladder family trades error for buckets.
_GUARANTEES = {
    "min-merge": (1.0, 2),
    "pwl-min-merge": (1.0, 2),
    "min-increment": (None, 1),  # None: 1 + spec.epsilon
    "pwl": (None, 1),
}

#: Numerical slack for the bound checks (float accumulation only; the
#: guarantees themselves are exact).
_TOLERANCE = 1e-9


@dataclass(frozen=True)
class StreamReport:
    """Everything measured for one tenant stream."""

    stream: str
    items: int
    batches: int
    buckets_used: int
    error: float
    true_error: float
    oracle_error: float
    error_bound: float
    bound_ok: bool
    memory_bytes: int
    elapsed_seconds: float
    append: LatencySummary
    recovered_identical: Optional[bool] = None

    @property
    def throughput_items_per_second(self) -> float:
        """Ingest rate over the stream's wall-clock run time."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.items / self.elapsed_seconds

    def to_dict(self) -> dict:
        """Plain-data form (feeds the CLI ``--json`` and bench reports)."""
        data = {
            "stream": self.stream,
            "items": self.items,
            "batches": self.batches,
            "buckets_used": self.buckets_used,
            "error": self.error,
            "true_error": self.true_error,
            "oracle_error": self.oracle_error,
            "error_bound": self.error_bound,
            "bound_ok": self.bound_ok,
            "memory_bytes": self.memory_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_items_per_second": self.throughput_items_per_second,
            "append": self.append.to_dict(),
        }
        if self.recovered_identical is not None:
            data["recovered_identical"] = self.recovered_identical
        return data


@dataclass(frozen=True)
class ScenarioReport:
    """Aggregate outcome of one scenario run (``to_dict`` feeds JSON)."""

    scenario: str
    method: str
    target: str
    backend: str
    workers: Optional[int]
    buckets: int
    window: Optional[int]
    streams: Tuple[StreamReport, ...]
    elapsed_seconds: float
    faults_fired: Tuple[str, ...] = ()

    @property
    def items(self) -> int:
        """Total items ingested across all tenant streams."""
        return sum(s.items for s in self.streams)

    @property
    def all_bounds_ok(self) -> bool:
        """Every stream's realized error within its method's guarantee."""
        return all(s.bound_ok for s in self.streams)

    @property
    def worst_error_ratio(self) -> float:
        """Max realized-over-optimal error ratio across streams."""
        worst = 0.0
        for s in self.streams:
            if s.oracle_error > 0:
                worst = max(worst, s.true_error / s.oracle_error)
            elif s.true_error > 0:  # pragma: no cover - bound_ok catches it
                return float("inf")
        return worst

    def to_dict(self) -> dict:
        """Plain-data form (feeds the CLI ``--json`` and bench reports)."""
        return {
            "scenario": self.scenario,
            "method": self.method,
            "target": self.target,
            "backend": self.backend,
            "workers": self.workers,
            "buckets": self.buckets,
            "window": self.window,
            "items": self.items,
            "elapsed_seconds": self.elapsed_seconds,
            "all_bounds_ok": self.all_bounds_ok,
            "worst_error_ratio": self.worst_error_ratio,
            "faults_fired": list(self.faults_fired),
            "streams": [s.to_dict() for s in self.streams],
        }


@dataclass
class _StreamRun:
    """Mutable scratch for one stream's execution."""

    name: str
    values: np.ndarray
    batches: List[np.ndarray]
    append_seconds: List[float] = field(default_factory=list)
    histogram: object = None
    memory_bytes: int = 0
    elapsed: float = 0.0
    recovered_identical: Optional[bool] = None


class ScenarioRunner:
    """Run scenario specs against the library or a live service.

    Parameters
    ----------
    target:
        ``"local"`` (default) or ``"service"`` (see module docs).
    backend:
        Maintenance kernel for the MIN-MERGE family (``"object"`` /
        ``"soa"``); forwarded to :func:`~repro.api.build_summary` or the
        service stream config.
    workers:
        When set (> 1), local runs ingest each stream through the
        parallel one-shot path (merge-capable methods only) instead of
        the batch schedule -- the cross-path cell of the conformance
        matrix.  Latency percentiles then cover one sample per stream.
    host / port:
        An existing service endpoint for ``target="service"``; when
        omitted the runner boots (and tears down) an ephemeral
        single-process server.
    """

    def __init__(
        self,
        *,
        target: str = "local",
        backend: str = "object",
        workers: Optional[int] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        if target not in ("local", "service"):
            raise InvalidParameterError(
                f'target must be "local" or "service", got {target!r}'
            )
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if target == "service" and workers is not None:
            raise InvalidParameterError(
                "workers= applies to local runs; a service shards via "
                "`serve --workers` instead"
            )
        self.target = target
        self.backend = backend
        self.workers = workers
        self.host = host
        self.port = port

    # -- entry point ----------------------------------------------------------

    def run(self, spec: ScenarioSpec, method: str = "min-merge") -> ScenarioReport:
        """Execute ``spec`` with ``method``; returns the measured report."""
        if method not in streaming_methods():
            raise InvalidParameterError(
                f"scenario runs need a streaming method, got {method!r} "
                f"(streaming: {', '.join(streaming_methods())})"
            )
        if self.backend != "object" and method not in BACKEND_METHODS:
            raise InvalidParameterError(
                f"backend={self.backend!r} needs one of "
                f"{', '.join(BACKEND_METHODS)}, got {method!r}"
            )
        if self.workers is not None and self.workers > 1:
            if method not in PARALLEL_METHODS:
                raise InvalidParameterError(
                    f"workers= needs a merge-capable method "
                    f"({', '.join(PARALLEL_METHODS)}), got {method!r}"
                )
            if spec.window is not None:
                raise InvalidParameterError(
                    "windowed scenarios cannot run with workers=: "
                    "sliding-window state is not mergeable"
                )
        runs = [
            _StreamRun(
                name=name,
                values=values,
                batches=_slice_batches(values, schedule),
            )
            for (name, values), schedule in zip(
                generate(spec).items(), schedules(spec).values()
            )
        ]
        started = time.perf_counter()
        if self.target == "service":
            self._run_service(spec, method, runs)
        else:
            for run in runs:
                self._run_local(spec, method, run)
        elapsed = time.perf_counter() - started
        faults_fired: Tuple[str, ...] = ()
        if spec.faults and self.target == "local":
            faults_fired = self._run_faulted(spec, method, runs)
        return ScenarioReport(
            scenario=spec.name,
            method=method,
            target=self.target,
            backend=self.backend,
            workers=self.workers,
            buckets=spec.buckets,
            window=spec.window,
            streams=tuple(
                self._report_stream(spec, method, run) for run in runs
            ),
            elapsed_seconds=elapsed,
            faults_fired=faults_fired,
        )

    # -- local execution ------------------------------------------------------

    def _build(self, spec: ScenarioSpec, method: str):
        return build_summary(
            method,
            buckets=spec.buckets,
            epsilon=spec.epsilon,
            universe=spec.universe,
            window=spec.window,
            backend=self.backend,
        )

    def _run_local(self, spec: ScenarioSpec, method: str, run: _StreamRun) -> None:
        started = time.perf_counter()
        if self.workers is not None and self.workers > 1:
            # One-shot parallel ingest: the whole stream in one timed call.
            from repro.api import summarize

            t0 = time.perf_counter()
            hist = summarize(
                run.values,
                spec.buckets,
                method=method,
                workers=self.workers,
                backend=self.backend,
            )
            run.append_seconds.append(time.perf_counter() - t0)
            run.histogram = hist
            run.memory_bytes = 0  # the shards are gone; nothing to account
        else:
            summary = self._build(spec, method)
            for batch in run.batches:
                t0 = time.perf_counter()
                summary.extend(batch)
                run.append_seconds.append(time.perf_counter() - t0)
            run.histogram = summary.histogram()
            run.memory_bytes = summary.memory_bytes()
        run.elapsed = time.perf_counter() - started

    # -- fault-schedule execution ---------------------------------------------

    def _run_faulted(
        self, spec: ScenarioSpec, method: str, runs: List[_StreamRun]
    ) -> Tuple[str, ...]:
        """Crash -> recover each stream under the spec's fault table.

        Ingest runs through a checkpointing store with the spec's
        :class:`~repro.resilience.FaultPlan`; the injected crash aborts
        mid-cycle, a fresh store recovers, ingestion finishes, and the
        recovered summary must be bit-identical to the undisturbed run.
        """
        from repro.checkpoint import state_dict
        from repro.resilience import CheckpointStore, FaultPlan

        fired: List[str] = []
        for run in runs:
            plan = FaultPlan(spec.faults)
            with tempfile.TemporaryDirectory(prefix="scenario-fault-") as root:
                store = CheckpointStore(root, journal=True, fault_plan=plan)
                summary = self._build(spec, method)
                crashed = False
                try:
                    for batch in run.batches:
                        store.ingest(summary, batch.tolist())
                        store.save(summary)
                except InjectedFaultError:
                    crashed = True
                fired.extend(plan.fired)
                if crashed:
                    fresh = CheckpointStore(root, journal=True)
                    summary = fresh.recover(
                        factory=lambda: self._build(spec, method)
                    )
                    rest = run.values[summary.items_seen :].tolist()
                    if rest:
                        summary.extend(rest)
                baseline = self._build(spec, method)
                baseline.extend(run.values)
                run.recovered_identical = state_dict(summary) == state_dict(
                    baseline
                )
        return tuple(fired)

    # -- service execution ----------------------------------------------------

    def _run_service(
        self, spec: ScenarioSpec, method: str, runs: List[_StreamRun]
    ) -> None:
        from repro.service import ServiceClient, StreamEngine, StreamServer

        engine = server = None
        host, port = self.host, self.port
        if port is None:
            engine = StreamEngine()
            server = StreamServer(engine).start_in_background()
            host, port = "127.0.0.1", server.port
        config = {
            "method": method,
            "buckets": spec.buckets,
            "universe": spec.universe,
        }
        if spec.window is not None:
            config["window"] = spec.window
        if self.backend != "object":
            config["backend"] = self.backend
        try:
            with ServiceClient(host or "127.0.0.1", port) as client:
                for run in runs:
                    started = time.perf_counter()
                    for batch in run.batches:
                        t0 = time.perf_counter()
                        client.append(run.name, batch, **config)
                        run.append_seconds.append(time.perf_counter() - t0)
                    result = client.query(run.name, drain=True)
                    run.histogram = result.histogram
                    stats = client.stats(run.name)
                    run.memory_bytes = int(stats["memory_bytes"])
                    run.elapsed = time.perf_counter() - started
        finally:
            if server is not None:
                server.stop()
            if engine is not None:
                engine.close()

    # -- verification ---------------------------------------------------------

    def _report_stream(
        self, spec: ScenarioSpec, method: str, run: _StreamRun
    ) -> StreamReport:
        hist = run.histogram
        # The histogram may cover only a suffix (sliding windows); verify
        # against exactly the values it claims to cover.
        covered = run.values[hist.beg : hist.end + 1].tolist()
        oracle = optimal_error(covered, spec.buckets)
        true_error = hist.max_error_against(covered)
        factor, _bucket_factor = _GUARANTEES.get(method, (None, 2))
        factor = (1.0 + spec.epsilon) if factor is None else factor
        bound = factor * oracle + _TOLERANCE
        return StreamReport(
            stream=run.name,
            items=len(run.values),
            batches=len(run.batches),
            buckets_used=len(hist),
            error=hist.error,
            true_error=true_error,
            oracle_error=oracle,
            error_bound=bound,
            bound_ok=true_error <= bound,
            memory_bytes=run.memory_bytes,
            elapsed_seconds=run.elapsed,
            append=summarize_latencies(run.append_seconds),
            recovered_identical=run.recovered_identical,
        )


def _slice_batches(values: np.ndarray, schedule: List[int]) -> List[np.ndarray]:
    """Cut one stream into its arrival batches (views, no copies)."""
    out = []
    offset = 0
    for size in schedule:
        out.append(values[offset : offset + size])
        offset += size
    return out


def run_scenario(
    spec: ScenarioSpec,
    method: str = "min-merge",
    **runner_kwargs,
) -> ScenarioReport:
    """One-call convenience: ``ScenarioRunner(**kwargs).run(spec, method)``."""
    return ScenarioRunner(**runner_kwargs).run(spec, method)


def reports_to_dict(reports: Dict[str, ScenarioReport]) -> dict:
    """Plain-data form of a batch of reports, keyed by scenario name."""
    return {name: report.to_dict() for name, report in reports.items()}
