"""Scenario DSL, workload simulator, and differential conformance suite.

``repro.scenarios`` turns a YAML document into a fully deterministic
workload -- arrival pattern, value process (with drift / regime
switches), ordering perturbations, multi-tenant hot/cold mix, and an
optional fault schedule -- and runs it against any registry method (both
summary backends, optionally sharded across workers) or against the
live service, reporting realized error against the offline-optimal
oracle alongside memory / throughput / latency percentiles.

Typical use::

    from repro.scenarios import load_bundled, run_scenario

    spec = load_bundled("bursty-drift")
    report = run_scenario(spec, "min-merge")
    assert report.all_bounds_ok

and from the command line::

    python -m repro scenario list
    python -m repro scenario run bursty-drift --method min-merge

The differential conformance matrix (:func:`check_conformance`) is the
standing correctness harness: every bundled scenario must produce
bit-identical buckets across serial/batched/SoA/parallel ingest paths
and bounded error against the exact DP oracle.
"""

from repro.scenarios.catalog import (
    BUNDLED_DIR,
    bundled_path,
    bundled_scenarios,
    conformance_scenarios,
    load_bundled,
    resolve_spec,
)
from repro.scenarios.conformance import (
    CONFORMANCE_WORKERS,
    ConformanceError,
    ConformanceResult,
    Fingerprint,
    check_conformance,
    run_conformance,
)
from repro.scenarios.generate import (
    apply_ordering,
    batch_schedule,
    child_rng,
    fingerprint,
    generate,
    generate_stream,
    schedules,
    stream_lengths,
)
from repro.scenarios.runner import (
    ScenarioReport,
    ScenarioRunner,
    StreamReport,
    reports_to_dict,
    run_scenario,
)
from repro.scenarios.spec import (
    ARRIVAL_PATTERNS,
    DRIFT_KINDS,
    ORDERINGS,
    VALUE_PROCESSES,
    ArrivalSpec,
    DriftSpec,
    OrderingSpec,
    RegimeSpec,
    ScenarioSpec,
    TenantsSpec,
    ValueSpec,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "BUNDLED_DIR",
    "CONFORMANCE_WORKERS",
    "DRIFT_KINDS",
    "ORDERINGS",
    "VALUE_PROCESSES",
    "ArrivalSpec",
    "ConformanceError",
    "ConformanceResult",
    "DriftSpec",
    "Fingerprint",
    "OrderingSpec",
    "RegimeSpec",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "StreamReport",
    "TenantsSpec",
    "ValueSpec",
    "apply_ordering",
    "batch_schedule",
    "bundled_path",
    "bundled_scenarios",
    "check_conformance",
    "child_rng",
    "conformance_scenarios",
    "fingerprint",
    "generate",
    "generate_stream",
    "load_bundled",
    "reports_to_dict",
    "resolve_spec",
    "run_conformance",
    "run_scenario",
    "schedules",
    "stream_lengths",
]
