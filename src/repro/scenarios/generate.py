"""Deterministic workload synthesis from a :class:`ScenarioSpec`.

Everything here is a pure function of the spec: one spec-level seed is
expanded through ``numpy.random.SeedSequence`` into independent child
generators for each (stream, purpose) pair, and those children are
threaded straight into :mod:`repro.data.generators` (which accept live
``Generator`` instances).  Two calls with the same spec therefore
produce byte-identical arrays -- the regression the conformance suite
pins -- and adding a stream or purpose never perturbs the others.

The output domain is the paper's integer universe ``[0, U)``:
float-valued processes are affinely quantized
(:func:`repro.data.quantize.quantize_to_universe`), while ``zipf`` and
``constant`` emit integers directly so sparse supports stay genuinely
sparse.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.data import generators
from repro.data.quantize import quantize_to_universe
from repro.exceptions import InvalidParameterError
from repro.scenarios.spec import (
    DriftSpec,
    OrderingSpec,
    ScenarioSpec,
    ValueSpec,
)

#: Purpose tags hashed into each child seed so the value process, the
#: ordering shuffle, and the arrival schedule draw from independent
#: streams of randomness.
_PURPOSE_VALUES = 0
_PURPOSE_ORDER = 1
_PURPOSE_ARRIVAL = 2


def child_rng(spec: ScenarioSpec, stream: int, purpose: int) -> np.random.Generator:
    """The deterministic child generator for one (stream, purpose) pair."""
    return np.random.default_rng(
        np.random.SeedSequence([int(spec.seed), int(stream), int(purpose)])
    )


# -- stream lengths (hot/cold tenant split) ------------------------------------


def stream_lengths(spec: ScenarioSpec) -> List[int]:
    """Items per tenant stream, summing exactly to ``spec.length``.

    Hot streams (the first ``ceil(hot_fraction * streams)``) split
    ``hot_weight`` of the items evenly; cold streams split the rest.
    Remainders go to the earliest streams of each class so the split is
    deterministic and every stream gets at least one item.
    """
    streams = spec.tenants.streams
    if streams == 1:
        return [spec.length]
    hot = (
        max(1, int(np.ceil(spec.tenants.hot_fraction * streams)))
        if spec.tenants.hot_fraction > 0.0
        else 0
    )
    cold = streams - hot
    hot_items = int(round(spec.length * spec.tenants.hot_weight)) if hot else 0
    if not cold:
        hot_items = spec.length  # everyone is hot; the split is moot
    # Every stream must see >= 1 item; steal from the bigger class if the
    # rounding starved one side.
    hot_items = min(max(hot_items, hot), spec.length - cold)
    cold_items = spec.length - hot_items
    lengths = []
    for cls_count, cls_items in ((hot, hot_items), (cold, cold_items)):
        if not cls_count:
            continue
        base, extra = divmod(cls_items, cls_count)
        lengths.extend(base + (1 if i < extra else 0) for i in range(cls_count))
    return lengths


# -- value processes -----------------------------------------------------------

_GENERATOR_PROCESSES = {
    "brownian": generators.brownian_walk,
    "uniform": generators.uniform_noise,
    "sine": generators.sine_wave,
    "step": generators.step_function,
    "spikes": generators.spike_train,
    "ar1": generators.ar1_process,
    "mixture": generators.mixture_stream,
}


def _process_values(
    process: str, params: dict, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Raw (pre-drift, pre-quantization) values of one process segment."""
    if process == "constant":
        level = float(params.get("level", 0.0))
        return np.full(n, level)
    if process == "zipf":
        return _zipf_values(params, n, rng).astype(float)
    maker = _GENERATOR_PROCESSES.get(process)
    if maker is None:  # pragma: no cover - spec validation rejects earlier
        raise InvalidParameterError(f"unknown value process {process!r}")
    return np.asarray(maker(n, seed=rng, **params), dtype=float)


def _zipf_values(params: dict, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sparse skewed universe: ``support`` points under Zipf(``skew``).

    The support points are drawn once (without replacement where the
    universe allows) and values are sampled with the Zipf probability
    mass -- most items hit a handful of heavy points, the long tail is
    rare, and the occupied fraction of the universe stays tiny.
    """
    support = int(params.get("support", 32))
    skew = float(params.get("skew", 1.2))
    universe = int(params.get("universe", 1 << 15))
    if support < 1:
        raise InvalidParameterError(f"support must be >= 1, got {support}")
    if skew <= 0.0:
        raise InvalidParameterError(f"skew must be > 0, got {skew}")
    support = min(support, universe)
    points = np.sort(rng.choice(universe, size=support, replace=False))
    weights = 1.0 / np.arange(1, support + 1, dtype=float) ** skew
    weights /= weights.sum()
    # Rank-to-point assignment is itself shuffled so the heavy hitters
    # are not always the numerically smallest support points.
    ranked = rng.permutation(points)
    return ranked[rng.choice(support, size=n, p=weights)]


def _apply_drift(values: np.ndarray, drift: DriftSpec) -> np.ndarray:
    if drift.kind == "none" or drift.magnitude == 0.0:
        return values
    n = len(values)
    if drift.kind == "linear":
        return values + np.linspace(0.0, drift.magnitude, n)
    # jump: a level shift past the switch point.
    switch = int(round(drift.at * n))
    out = values.copy()
    out[switch:] += drift.magnitude
    return out


def _regime_lengths(values: ValueSpec, n: int) -> List[int]:
    """Per-regime item counts, proportional to fractions, summing to n."""
    fractions = np.asarray([r.fraction for r in values.regimes], dtype=float)
    fractions /= fractions.sum()
    counts = np.floor(fractions * n).astype(int)
    counts[: n - int(counts.sum())] += 1  # distribute the remainder
    return [int(c) for c in counts]


def _raw_values(spec: ScenarioSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    vs = spec.values
    if vs.regimes:
        parts = [
            _process_values(r.process, r.params, count, rng)
            for r, count in zip(vs.regimes, _regime_lengths(vs, n))
            if count > 0
        ]
        raw = np.concatenate(parts)
    else:
        raw = _process_values(vs.process, vs.params, n, rng)
    return _apply_drift(raw, vs.drift)


# -- orderings -----------------------------------------------------------------


def _adversarial_interleave(values: np.ndarray) -> np.ndarray:
    """Alternate the sorted extremes: v(0), v(n-1), v(1), v(n-2), ...

    Every adjacent pair then spans nearly the full remaining value range,
    the worst case for greedy bucket-boundary placement: a summary that
    closes buckets too eagerly burns its whole budget on the first few
    pairs.
    """
    ordered = np.sort(values)
    out = np.empty_like(ordered)
    half = (len(ordered) + 1) // 2
    out[0::2] = ordered[:half]
    out[1::2] = ordered[len(ordered) - 1 : half - 1 : -1]
    return out


def apply_ordering(
    values: np.ndarray, ordering: OrderingSpec, rng: np.random.Generator
) -> np.ndarray:
    """Reorder ``values`` per the spec; the multiset is always preserved."""
    if ordering.kind == "sorted":
        values = np.sort(values)
    elif ordering.kind == "reverse":
        values = np.sort(values)[::-1]
    elif ordering.kind == "shuffled":
        values = rng.permutation(values)
    elif ordering.kind == "adversarial":
        values = _adversarial_interleave(values)
    if ordering.out_of_order > 0.0 and len(values) > 1:
        # Bounded-delay shuffle: displaced items get a fractional key
        # offset < displacement, and a stable argsort realizes the
        # arrival order -- no item moves further than its delay bound.
        n = len(values)
        keys = np.arange(n, dtype=float)
        displaced = rng.random(n) < ordering.out_of_order
        keys[displaced] += rng.uniform(
            0.0, float(ordering.displacement), size=int(displaced.sum())
        )
        values = values[np.argsort(keys, kind="stable")]
    return np.ascontiguousarray(values)


# -- arrival schedules ---------------------------------------------------------


def batch_schedule(
    spec: ScenarioSpec, n: int, rng: np.random.Generator
) -> List[int]:
    """Append-batch sizes for one ``n``-item stream (sums to ``n``)."""
    arrival = spec.arrival
    sizes: List[int] = []
    remaining = n
    index = 0
    while remaining > 0:
        if arrival.pattern == "steady":
            size = arrival.batch
        elif arrival.pattern == "bursty":
            burst = (index + 1) % arrival.burst_every == 0
            size = arrival.batch if burst else arrival.trickle
        else:  # heavy-tailed
            draw = rng.pareto(arrival.alpha) * arrival.batch
            size = int(min(max(1.0, draw), float(arrival.max_batch)))
        sizes.append(min(size, remaining))
        remaining -= sizes[-1]
        index += 1
    return sizes


# -- the public surface --------------------------------------------------------


def generate_stream(spec: ScenarioSpec, stream: int = 0) -> np.ndarray:
    """The finished integer value array of tenant stream ``stream``."""
    lengths = stream_lengths(spec)
    if not 0 <= stream < len(lengths):
        raise InvalidParameterError(
            f"stream index {stream} out of range for "
            f"{len(lengths)}-stream scenario {spec.name!r}"
        )
    n = lengths[stream]
    raw = _raw_values(spec, n, child_rng(spec, stream, _PURPOSE_VALUES))
    if spec.values.process in ("zipf",) and not spec.values.regimes:
        # Already integer-valued on a sparse support; clip instead of
        # re-quantizing so the support stays sparse in [0, U).
        domain = np.clip(raw, 0, spec.universe - 1).astype(np.int64)
    else:
        domain = np.asarray(
            quantize_to_universe(raw, spec.universe), dtype=np.int64
        )
    ordered = apply_ordering(
        domain, spec.ordering, child_rng(spec, stream, _PURPOSE_ORDER)
    )
    return ordered


def generate(spec: ScenarioSpec) -> Dict[str, np.ndarray]:
    """All tenant streams: ``{stream_name: values}`` in spec order."""
    return {
        name: generate_stream(spec, i)
        for i, name in enumerate(spec.stream_names)
    }


def schedules(spec: ScenarioSpec) -> Dict[str, List[int]]:
    """Per-stream arrival schedules: ``{stream_name: [batch sizes]}``."""
    lengths = stream_lengths(spec)
    return {
        name: batch_schedule(
            spec, lengths[i], child_rng(spec, i, _PURPOSE_ARRIVAL)
        )
        for i, name in enumerate(spec.stream_names)
    }


def fingerprint(spec: ScenarioSpec) -> str:
    """A stable hex digest of every generated stream (regression anchor)."""
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    for name, values in generate(spec).items():
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(values).tobytes())
    return digest.hexdigest()
