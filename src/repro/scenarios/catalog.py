"""The bundled scenario catalog: the repo's enumerable workload library.

Every ``*.yaml`` file under ``repro/scenarios/bundled/`` is one
:class:`~repro.scenarios.ScenarioSpec` (see ``docs/SCENARIOS.md`` for the
catalog table).  The conformance suite (:mod:`repro.scenarios.conformance`,
``tests/test_scenarios.py``) runs every bundled scenario through the
differential matrix, so adding a YAML file here automatically widens the
standing correctness harness -- no test edits required.
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.exceptions import InvalidParameterError
from repro.scenarios.spec import ScenarioSpec

#: Directory holding the bundled scenario YAML files.
BUNDLED_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bundled")


def bundled_scenarios() -> Tuple[str, ...]:
    """Names of every bundled scenario, sorted."""
    return tuple(
        sorted(
            name[: -len(".yaml")]
            for name in os.listdir(BUNDLED_DIR)
            if name.endswith(".yaml")
        )
    )


def bundled_path(name: str) -> str:
    """Absolute path of one bundled scenario's YAML file."""
    base = name[: -len(".yaml")] if name.endswith(".yaml") else name
    path = os.path.join(BUNDLED_DIR, base + ".yaml")
    if not os.path.exists(path):
        raise InvalidParameterError(
            f"no bundled scenario {name!r}; bundled: "
            f"{', '.join(bundled_scenarios())}"
        )
    return path


def load_bundled(name: str) -> ScenarioSpec:
    """Load one bundled scenario by name (``.yaml`` suffix optional)."""
    return ScenarioSpec.load(bundled_path(name))


def resolve_spec(ref: str) -> ScenarioSpec:
    """A spec from a file path or a bundled scenario name.

    Existing paths win (so a local ``drift.yaml`` shadows nothing
    silently only if it actually exists); anything else is looked up in
    the bundled catalog.
    """
    if os.path.exists(ref):
        return ScenarioSpec.load(ref)
    return load_bundled(ref)


def conformance_scenarios() -> Tuple[str, ...]:
    """Bundled scenarios eligible for the full cross-backend matrix.

    Windowed scenarios are excluded: the sliding-window variants have no
    SoA backend and no mergeable (parallel) form, so they run the
    serial-only conformance cells instead.
    """
    return tuple(
        name
        for name in bundled_scenarios()
        if load_bundled(name).window is None
    )
