"""Differential conformance: every ingest path must tell the same story.

For one (scenario, method) pair the matrix runs every applicable cell --

* serial scalar ingest, ``object`` and ``soa`` backends;
* serial batched ingest (the spec's arrival schedule), both backends;
* parallel sharded ingest (``workers=2``), both backends, plus the
  serial merge-of-shards reference it must reproduce;

-- and then asserts, per stream:

1. **bit-identity within the serial family**: all serial cells (scalar /
   batched x object / soa) produce identical segments, error, and
   tie-breaks;
2. **bit-identity within the parallel family**: both parallel backends
   equal the deterministic serial merge-of-shards reference (the same
   merge schedule computed without a process pool) -- the parallel path
   may legally differ from single-pass serial (a different, equally
   valid merge order), but never from its own reference;
3. **bounded error everywhere**: every cell's realized error respects
   the method's guarantee against the exact offline oracle
   (:func:`repro.offline.optimal.optimal_error`, cross-validated in the
   test suite against the independent O(n^2 B) DP).

Scenarios with a fault table additionally run the crash -> recover
cycle (via :class:`~repro.scenarios.ScenarioRunner`) and require
bit-identical recovery.  :func:`run_conformance` returns a
:class:`ConformanceResult`; :func:`check_conformance` raises
:class:`ConformanceError` with the offending cells instead -- the form
CI and the ``scenario run --conformance`` CLI consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import BACKEND_METHODS, PARALLEL_METHODS, build_summary
from repro.exceptions import ReproError
from repro.offline.optimal import optimal_error
from repro.scenarios.generate import generate, schedules
from repro.scenarios.runner import _GUARANTEES, _TOLERANCE, ScenarioRunner
from repro.scenarios.spec import ScenarioSpec

#: Worker count of the parallel conformance cells.
CONFORMANCE_WORKERS = 2


class ConformanceError(ReproError):
    """At least one conformance cell disagreed or broke its bound."""


@dataclass(frozen=True)
class Fingerprint:
    """The bit-identity comparison form of one run's histogram."""

    segments: Tuple[Tuple[int, int, float, float], ...]
    error: float

    @classmethod
    def of(cls, histogram) -> "Fingerprint":
        """Fingerprint a histogram's segments, error, and tie-breaks."""
        return cls(
            segments=tuple(
                (s.beg, s.end, s.left, s.right) for s in histogram.segments
            ),
            error=histogram.error,
        )


@dataclass
class ConformanceResult:
    """Everything the matrix measured for one (scenario, method) pair."""

    scenario: str
    method: str
    #: ``{stream: {cell: fingerprint}}`` for every executed cell.
    cells: Dict[str, Dict[str, Fingerprint]] = field(default_factory=dict)
    #: Human-readable violations (empty = conformant).
    mismatches: List[str] = field(default_factory=list)
    #: ``{stream: oracle_error}`` from the offline optimum.
    oracles: Dict[str, float] = field(default_factory=dict)
    #: Fault-recovery verdict per stream (None = scenario has no faults).
    recovered_identical: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """True when every cell agreed and every bound held."""
        return not self.mismatches

    @property
    def cell_count(self) -> int:
        """Total executed cells across all streams."""
        return sum(len(c) for c in self.cells.values())

    def to_dict(self) -> dict:
        """Plain-data summary (feeds ``BENCH_SCENARIO.json``)."""
        return {
            "scenario": self.scenario,
            "method": self.method,
            "streams": len(self.cells),
            "cells": self.cell_count,
            "ok": self.ok,
            "mismatches": self.mismatches,
            "recovered_identical": self.recovered_identical,
        }


def _serial_cells(method: str) -> List[Tuple[str, str, str]]:
    """(cell name, backend, ingest) for the serial family."""
    backends = ["object"]
    if method in BACKEND_METHODS:
        backends.append("soa")
    return [
        (f"serial/{backend}/{ingest}", backend, ingest)
        for backend in backends
        for ingest in ("scalar", "batch")
    ]


def _run_serial(
    spec: ScenarioSpec,
    method: str,
    backend: str,
    ingest: str,
    values: np.ndarray,
    schedule: List[int],
):
    summary = build_summary(
        method,
        buckets=spec.buckets,
        epsilon=spec.epsilon,
        universe=spec.universe,
        window=spec.window,
        backend=backend,
    )
    if ingest == "scalar":
        for v in values.tolist():
            summary.insert(v)
    else:
        offset = 0
        for size in schedule:
            summary.extend(values[offset : offset + size])
            offset += size
    return summary.histogram()


def _run_parallel(spec: ScenarioSpec, method: str, backend: str, values):
    from repro.parallel import ParallelSummarizer

    summarizer = ParallelSummarizer(
        method,
        buckets=spec.buckets,
        workers=CONFORMANCE_WORKERS,
        summary_backend=backend,
        serial_cutoff=1,
    )
    live = summarizer.summarize(values).histogram()
    reference = summarizer.reference(values).histogram()
    return live, reference


def run_conformance(
    spec: ScenarioSpec,
    method: str = "min-merge",
    *,
    parallel: bool = True,
) -> ConformanceResult:
    """Execute the full matrix for one scenario; never raises on mismatch."""
    result = ConformanceResult(scenario=spec.name, method=method)
    streams = generate(spec)
    stream_schedules = schedules(spec)
    factor, _ = _GUARANTEES.get(method, (None, 2))
    factor = (1.0 + spec.epsilon) if factor is None else factor

    for name, values in streams.items():
        cells: Dict[str, Fingerprint] = {}
        schedule = stream_schedules[name]
        for cell, backend, ingest in _serial_cells(method):
            hist = _run_serial(spec, method, backend, ingest, values, schedule)
            cells[cell] = Fingerprint.of(hist)
            _check_bound(result, spec, name, cell, hist, values, factor)
        if parallel and method in PARALLEL_METHODS and spec.window is None:
            reference = None
            backends = ["object"]
            if method in BACKEND_METHODS:
                backends.append("soa")
            for backend in backends:
                live, ref = _run_parallel(spec, method, backend, values)
                cells[f"parallel/{backend}"] = Fingerprint.of(live)
                if reference is None:
                    reference = Fingerprint.of(ref)
                    cells["parallel/reference"] = reference
                _check_bound(
                    result,
                    spec,
                    name,
                    f"parallel/{backend}",
                    live,
                    values,
                    factor,
                )
        result.cells[name] = cells
        _check_identity(result, name, cells)

    if spec.faults:
        report = ScenarioRunner(target="local").run(spec, method)
        verdicts = [s.recovered_identical for s in report.streams]
        result.recovered_identical = all(v is True for v in verdicts)
        if not result.recovered_identical:
            result.mismatches.append(
                f"{spec.name}: fault-schedule recovery was not "
                f"bit-identical (per-stream verdicts: {verdicts})"
            )
    return result


def _check_bound(
    result: ConformanceResult,
    spec: ScenarioSpec,
    stream: str,
    cell: str,
    hist,
    values: np.ndarray,
    factor: float,
) -> None:
    covered = values[hist.beg : hist.end + 1].tolist()
    oracle = result.oracles.get(stream)
    if oracle is None or spec.window is not None:
        oracle = optimal_error(covered, spec.buckets)
        result.oracles.setdefault(stream, oracle)
    true_error = hist.max_error_against(covered)
    if true_error > factor * oracle + _TOLERANCE:
        result.mismatches.append(
            f"{stream} [{cell}]: error {true_error!r} exceeds bound "
            f"{factor} x oracle {oracle!r}"
        )


def _check_identity(
    result: ConformanceResult, stream: str, cells: Dict[str, Fingerprint]
) -> None:
    serial = {k: v for k, v in cells.items() if k.startswith("serial/")}
    anchor_name = next(iter(serial))
    anchor = serial[anchor_name]
    for cell, print_ in serial.items():
        if print_ != anchor:
            result.mismatches.append(
                f"{stream}: {cell} differs from {anchor_name} "
                f"(error {print_.error!r} vs {anchor.error!r}, "
                f"{len(print_.segments)} vs {len(anchor.segments)} segments)"
            )
    reference = cells.get("parallel/reference")
    if reference is not None:
        for cell, print_ in cells.items():
            if cell.startswith("parallel/") and cell != "parallel/reference":
                if print_ != reference:
                    result.mismatches.append(
                        f"{stream}: {cell} differs from the serial "
                        f"merge-of-shards reference"
                    )


def check_conformance(
    spec: ScenarioSpec, method: str = "min-merge", **kwargs
) -> ConformanceResult:
    """Run the matrix; raise :class:`ConformanceError` on any violation."""
    result = run_conformance(spec, method, **kwargs)
    if not result.ok:
        raise ConformanceError(
            f"scenario {spec.name!r} x {method}: "
            f"{len(result.mismatches)} violation(s):\n  "
            + "\n  ".join(result.mismatches)
        )
    return result
