"""Typed exceptions raised by the :mod:`repro` library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  More specific subclasses identify the failure mode:

* :class:`InvalidParameterError` -- a constructor or function argument is out
  of its documented range (for example ``buckets < 1`` or ``epsilon >= 1``).
* :class:`DomainError` -- a stream value is outside the declared universe
  ``[0, U)`` or is not a real number.
* :class:`EmptySummaryError` -- a histogram was requested from a summary that
  has seen no data (or, in the sliding-window model, whose window is empty).
* :class:`UnsupportedCheckpointError` -- :func:`repro.checkpoint.state_dict`
  or :func:`repro.checkpoint.restore` was handed a summary type (or
  checkpoint kind) outside the supported set.
* :class:`CheckpointCorruptionError` -- a persisted snapshot or journal
  failed validation (torn write, bit flip, missing generation) and no good
  fallback exists.
* :class:`InjectedFaultError` -- a deterministic test fault fired (see
  :mod:`repro.resilience.faults`); never raised in production
  configurations.
* :class:`BackpressureError` -- the streaming service engine rejected an
  append because the target stream's bounded write queue is full
  (admission control; the request is safe to retry).
* :class:`UnknownStreamError` -- a request addressed a stream id the
  engine does not know (surfaced over the wire as ``unknown-stream``,
  HTTP 404).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented range."""


class DomainError(ReproError, ValueError):
    """A stream value lies outside the declared value universe."""


class EmptySummaryError(ReproError, RuntimeError):
    """A histogram was requested before any value was inserted."""


class UnsupportedCheckpointError(InvalidParameterError):
    """A summary type or checkpoint kind is outside the supported set.

    Subclasses :class:`InvalidParameterError` so existing callers that
    catch the broader class (or plain ``ValueError``) keep working; the
    message names the offending type and the supported set.
    """


class CheckpointCorruptionError(ReproError, RuntimeError):
    """No usable snapshot generation survived validation.

    Raised by :class:`repro.resilience.CheckpointStore` when every retained
    snapshot fails its checksum/parse checks, or when the journal tail is
    inconsistent with the loaded snapshot.
    """


class InjectedFaultError(ReproError, RuntimeError):
    """A deterministic fault from a :class:`repro.resilience.FaultPlan` fired.

    Simulates a crash (checkpoint I/O) or a worker death (parallel shard
    ingest) at a named fault point; test-only by construction -- no fault
    plan, no faults.
    """


class UnknownStreamError(InvalidParameterError):
    """A request addressed a stream id the engine does not know.

    Subclasses :class:`InvalidParameterError` so existing callers that
    catch the broader class (or plain ``ValueError``) keep working; the
    service layer maps it to its own ``unknown-stream`` error code
    (HTTP 404) instead of the generic ``invalid``.
    """


class BackpressureError(ReproError, RuntimeError):
    """An append was rejected because a stream's write queue is full.

    Raised by :class:`repro.service.StreamEngine` (and surfaced over the
    wire as a ``backpressure`` error) when accepting the batch would push
    the stream's pending-item count past its bound.  Nothing was ingested;
    the caller should back off and retry -- admission control protects the
    applied state, it never tears a batch.
    """
