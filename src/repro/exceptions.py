"""Typed exceptions raised by the :mod:`repro` library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  More specific subclasses identify the failure mode:

* :class:`InvalidParameterError` -- a constructor or function argument is out
  of its documented range (for example ``buckets < 1`` or ``epsilon >= 1``).
* :class:`DomainError` -- a stream value is outside the declared universe
  ``[0, U)`` or is not a real number.
* :class:`EmptySummaryError` -- a histogram was requested from a summary that
  has seen no data (or, in the sliding-window model, whose window is empty).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented range."""


class DomainError(ReproError, ValueError):
    """A stream value lies outside the declared value universe."""


class EmptySummaryError(ReproError, RuntimeError):
    """A histogram was requested before any value was inserted."""
