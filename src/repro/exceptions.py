"""Typed exceptions raised by the :mod:`repro` library.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  More specific subclasses identify the failure mode:

* :class:`InvalidParameterError` -- a constructor or function argument is out
  of its documented range (for example ``buckets < 1`` or ``epsilon >= 1``).
* :class:`DomainError` -- a stream value is outside the declared universe
  ``[0, U)`` or is not a real number.
* :class:`EmptySummaryError` -- a histogram was requested from a summary that
  has seen no data (or, in the sliding-window model, whose window is empty).
* :class:`UnsupportedCheckpointError` -- :func:`repro.checkpoint.state_dict`
  or :func:`repro.checkpoint.restore` was handed a summary type (or
  checkpoint kind) outside the supported set.
* :class:`CheckpointCorruptionError` -- a persisted snapshot or journal
  failed validation (torn write, bit flip, missing generation) and no good
  fallback exists.
* :class:`InjectedFaultError` -- a deterministic test fault fired (see
  :mod:`repro.resilience.faults`); never raised in production
  configurations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is outside its documented range."""


class DomainError(ReproError, ValueError):
    """A stream value lies outside the declared value universe."""


class EmptySummaryError(ReproError, RuntimeError):
    """A histogram was requested before any value was inserted."""


class UnsupportedCheckpointError(InvalidParameterError):
    """A summary type or checkpoint kind is outside the supported set.

    Subclasses :class:`InvalidParameterError` so existing callers that
    catch the broader class (or plain ``ValueError``) keep working; the
    message names the offending type and the supported set.
    """


class CheckpointCorruptionError(ReproError, RuntimeError):
    """No usable snapshot generation survived validation.

    Raised by :class:`repro.resilience.CheckpointStore` when every retained
    snapshot fails its checksum/parse checks, or when the journal tail is
    inconsistent with the loaded snapshot.
    """


class InjectedFaultError(ReproError, RuntimeError):
    """A deterministic fault from a :class:`repro.resilience.FaultPlan` fired.

    Simulates a crash (checkpoint I/O) or a worker death (parallel shard
    ingest) at a named fault point; test-only by construction -- no fault
    plan, no faults.
    """
