"""Parallel shard-then-merge ingest over ``concurrent.futures`` workers.

The paper's sensor-network deployment (Section 1, Section 2.1) is already a
parallel computation: every node summarizes its own segment and an
aggregation tree combines the children without replaying raw data.
:class:`ParallelSummarizer` runs that computation on one machine's cores --
split the input into contiguous shards (:class:`~repro.parallel.plan.ShardPlan`),
batch-ingest every shard in a worker, then combine the shard summaries with
the aggregation merge operator in a log-depth tree
(:func:`~repro.parallel.reduce.tree_reduce`).  The (1, 2) guarantee
survives (module docs of ``repro.core.aggregation``), and the result is
deterministic: bit-identical to running the same shard plan and merge tree
serially (:meth:`ParallelSummarizer.reference`), regardless of worker
backend or scheduling.

Backends
--------

* ``"process"`` -- a fresh ``ProcessPoolExecutor`` per call using the
  ``fork`` start method, so workers read their shard through a
  fork-inherited **view** of the input array: zero copies out, and only
  ``O(B)`` bucket state pickled back per shard.  Chosen automatically on
  POSIX for ndarray inputs whose shards are large enough to amortize the
  ~10-20 ms pool startup.
* ``"thread"`` -- a ``ThreadPoolExecutor`` over slices of the same array.
  The GIL serializes the pure-Python kernels, so this is a *fallback* for
  small inputs, non-POSIX platforms, and non-batchable sequences -- it
  exists so the sharded code path (and its determinism guarantees) are
  identical everywhere, not to be fast.

Only the merge-capable families parallelize: ``"min-merge"``
(:class:`MinMergeHistogram`) and ``"pwl-min-merge"``
(:class:`PwlMinMergeHistogram`).  The MIN-INCREMENT ladder is *not*
mergeable -- each level's GREEDY-INSERT state depends on its own prefix
boundaries, and two ladders over different segments cannot be combined
without replaying values -- so asking for it raises
:class:`~repro.exceptions.InvalidParameterError` (the documented fallback
is shard -> min-merge -> refeed the 2B representatives, at the cost of the
(1+eps, 1) guarantee degrading to min-merge's (1, 2)).

Worker-failure recovery: shards are dispatched as individual futures, and
a shard whose worker dies (``BrokenProcessPool``) or whose execution
raises is **retried** in later waves with exponential backoff -- the pool
is re-created if it broke -- and after ``max_shard_retries`` failed pool
attempts the shard **degrades to in-process execution** in the parent, so
a flaky pool can slow a run down but not change its answer (the retried
result is bit-identical to :meth:`ParallelSummarizer.reference`).  Every
failed attempt is surfaced through the ``failures_retried`` metrics
counter, which aggregates through merges like the other lifecycle
counters.  Deterministic worker deaths for tests come from a
:class:`~repro.resilience.FaultPlan` with ``shard:<i>`` (poison: the
attempt raises) or ``shard.kill:<i>`` (hard ``os._exit`` on the process
backend; degrades to poison on threads, which share the process) points.

Observability: with ``metrics=`` set, every worker runs instrumented and
the combined summary's facade reports the **sum** of the per-shard
lifecycle counters plus the merges performed by the reduction tree itself
(latency timelines stay per-process and are not merged).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.aggregation import merge_min_merge_summaries, merge_pwl_summaries
from repro.core.batch import as_batch_array
from repro.core.bucket import Bucket
from repro.core.interface import DEFAULT_HULL_EPSILON
from repro.core.min_merge import MinMergeHistogram
from repro.core.pwl_min_merge import PwlMinMergeHistogram
from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.observability.hooks import resolve_metrics
from repro.parallel.plan import ShardPlan
from repro.parallel.reduce import tree_reduce

__all__ = [
    "MERGEABLE_METHODS",
    "ParallelSummarizer",
    "available_cpus",
    "fork_available",
    "map_tasks",
    "resolve_workers",
    "summarize_parallel",
]

#: Methods whose summaries can be shard-ingested and merged losslessly.
MERGEABLE_METHODS = ("min-merge", "pwl-min-merge")

#: Per-method "auto" sizing cut-off: a shard below this many items cannot
#: amortize worker dispatch, so auto sizing stays serial / uses fewer
#: workers.  MIN-MERGE's vectorized batch path runs at several M items/s,
#: so its shards must be large; exact-hull PWL ingests orders of magnitude
#: fewer items/s and profits from parallelism much earlier.
_AUTO_CUTOFF = {"min-merge": 250_000, "pwl-min-merge": 8_192}

#: Minimum shard size for the process backend to be chosen automatically
#: (below it, fork + IPC overhead beats the parallel win).
_PROCESS_MIN_SHARD = {"min-merge": 100_000, "pwl-min-merge": 4_096}

#: Module global published immediately before a fork-context pool is
#: created, so workers inherit a zero-copy view of the input array.
_FORK_PAYLOAD = None


def available_cpus() -> int:
    """CPUs usable for worker sizing (never less than 1)."""
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def fork_available() -> bool:
    """Whether the zero-copy ``fork`` process backend can run here."""
    return (
        os.name == "posix"
        and "fork" in multiprocessing.get_all_start_methods()
    )


def resolve_workers(
    workers: Union[None, int, str],
    items: int,
    *,
    serial_cutoff: int,
) -> int:
    """Normalize a ``workers=`` argument to a concrete worker count.

    ``None``/``1`` mean serial.  ``"auto"`` sizes to the machine: one
    worker per ``serial_cutoff`` items, capped at the CPU count, and
    strictly serial below ``2 * serial_cutoff`` items so tiny streams never
    pay pool startup.  Explicit integers are honored (clamped to the item
    count by the shard plan).
    """
    if workers is None:
        return 1
    if workers == "auto":
        if items < 2 * serial_cutoff:
            return 1
        return max(1, min(available_cpus(), items // serial_cutoff))
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise InvalidParameterError(
            f'workers must be a positive int, "auto", or None; got {workers!r}'
        )
    return workers


def map_tasks(fn, tasks: Sequence, *, workers: Union[None, int, str] = None) -> list:
    """Run independent tasks, optionally on a thread pool; order preserved.

    The dispatch primitive shared by :meth:`StreamFleet.extend_rows` and
    the harness grid (:func:`repro.harness.runner.run_streams`): ``fn`` is
    applied to every task and the results are returned in task order.
    ``workers=None``/``1`` runs inline; ``"auto"`` uses one thread per task
    up to the CPU count.
    """
    tasks = list(tasks)
    if workers == "auto":
        workers = min(len(tasks), available_cpus())
    elif workers is not None and (
        not isinstance(workers, int) or isinstance(workers, bool) or workers < 1
    ):
        raise InvalidParameterError(
            f'workers must be a positive int, "auto", or None; got {workers!r}'
        )
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ThreadPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(fn, tasks))


# -- shard workers (run in pool workers; must stay module-level picklable) --


def _make_summary(spec: dict, metrics, start: int):
    """A fresh summary of the right family, indexing from ``start``."""
    if spec["method"] == "min-merge":
        summary = MinMergeHistogram(
            buckets=spec["buckets"],
            working_buckets=spec["working_buckets"],
            findmin=spec["findmin"],
            metrics=metrics,
            backend=spec.get("backend", "object"),
        )
    else:
        summary = PwlMinMergeHistogram(
            buckets=spec["buckets"],
            working_buckets=spec["working_buckets"],
            hull_epsilon=spec["hull_epsilon"],
            metrics=metrics,
            backend=spec.get("backend", "object"),
        )
    # Shards share the stream's global index space, so the merge operator
    # can verify contiguity instead of being told to reindex.
    summary._n = start
    return summary


def _build_shard_summary(spec: dict, start: int):
    """Worker-side summary: a private registry when instrumentation is on."""
    return _make_summary(spec, True if spec["instrument"] else None, start)


def _summarize_shard(segment, start: int, spec: dict):
    """Ingest one shard and return its live summary (thread/serial path)."""
    summary = _build_shard_summary(spec, start)
    summary.extend(segment)
    return summary


def _shard_payload(summary, spec: dict, start: int) -> tuple:
    """O(B) plain-data form of a shard summary for the IPC trip home."""
    count = summary.items_seen - start
    counters = (
        summary.metrics.counter_totals() if summary.metrics is not None else None
    )
    if spec["method"] == "min-merge":
        buckets = [
            (b.beg, b.end, b.min, b.max) for b in summary.buckets_snapshot()
        ]
    else:
        buckets = summary.buckets_snapshot()
    return buckets, count, counters


def _rebuild_child(payload: tuple, spec: dict):
    """Parent-side inverse of :func:`_shard_payload`."""
    buckets, count, counters = payload
    summary = _build_shard_summary(spec, 0)
    if spec["method"] == "min-merge":
        buckets = [Bucket(*item) for item in buckets]
    summary.adopt_buckets(buckets, count=count)
    if counters is not None:
        summary.metrics.absorb_counters(counters)
    return summary


def _maybe_inject(mode: Optional[str]) -> None:
    """Act on an injected shard fault: poison raises, kill dies hard."""
    if mode is None:
        return
    if mode == "kill":
        os._exit(86)
    raise InjectedFaultError(f"injected shard fault ({mode})")


def _forked_shard(args: tuple) -> tuple:
    """Pool-worker entry point: summarize one shard of the inherited array."""
    start, stop, spec, inject = args
    _maybe_inject(inject)
    segment = _FORK_PAYLOAD[start:stop]
    summary = _summarize_shard(segment, start, spec)
    return _shard_payload(summary, spec, start)


def _inprocess_payload(data, shard, spec: dict, inject: Optional[str]) -> tuple:
    """Degraded in-process shard run, normalized to the payload form."""
    # The parent cannot os._exit itself, so kill degrades to poison here.
    _maybe_inject("poison" if inject else None)
    summary = _summarize_shard(data[shard.slice()], shard.start, spec)
    return _shard_payload(summary, spec, shard.start)


class ParallelSummarizer:
    """Shard-parallel ingest for the merge-capable summary families.

    Parameters
    ----------
    method:
        ``"min-merge"`` or ``"pwl-min-merge"`` (see
        :data:`MERGEABLE_METHODS`; anything else raises, with the ladder
        non-mergeability rationale in the message).
    buckets:
        Target ``B`` of the combined summary.
    workers:
        ``"auto"`` (default -- size to the machine with a serial cut-off),
        a positive int, or ``None`` for serial.
    backend:
        ``None`` (auto), ``"process"``, or ``"thread"``; see module docs.
    arity:
        Merge-tree fan-in (default 2 = pairwise log-depth).  Larger arity
        trades tree depth for per-node reduction width; ``arity >= P``
        degenerates to one flat fold.
    working_buckets, hull_epsilon, findmin, summary_backend:
        Forwarded to the shard summaries (``hull_epsilon``/``findmin``
        apply to their family only; ``summary_backend`` selects the
        maintenance kernel, ``"object"`` or ``"soa"`` -- not to be
        confused with ``backend``, which schedules the pool).
    serial_cutoff:
        Items per worker below which ``"auto"`` stays serial; defaults to
        a per-method profile (:data:`_AUTO_CUTOFF`).
    metrics:
        Opt-in instrumentation (``True``, a registry, or a facade).  The
        facade on the *combined* summary aggregates per-shard counters,
        including ``failures_retried`` (one per failed shard attempt).
    max_shard_retries:
        Pool attempts per shard before it degrades to in-process
        execution in the parent (>= 1; default 2 = one retry).
    retry_backoff:
        Base of the exponential backoff between retry waves, in seconds
        (wave ``k`` sleeps ``retry_backoff * 2**(k-1)``); ``0`` disables
        sleeping (tests).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` consulted once per
        shard attempt at the ``shard:<i>`` / ``shard.kill:<i>`` points
        (tests only; ``reference`` never consults it).

    Examples
    --------
    >>> import numpy as np
    >>> arr = np.arange(10_000) % 97
    >>> combined = ParallelSummarizer("min-merge", buckets=8, workers=4).summarize(arr)
    >>> combined.items_seen
    10000
    """

    def __init__(
        self,
        method: str = "min-merge",
        *,
        buckets: int,
        workers: Union[None, int, str] = "auto",
        backend: Optional[str] = None,
        arity: int = 2,
        working_buckets: Optional[int] = None,
        hull_epsilon: Optional[float] = DEFAULT_HULL_EPSILON,
        findmin: str = "heap",
        summary_backend: str = "object",
        serial_cutoff: Optional[int] = None,
        metrics=None,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.05,
        fault_plan=None,
    ):
        if method not in MERGEABLE_METHODS:
            raise InvalidParameterError(
                f"method {method!r} is not merge-capable; parallel shard "
                f"ingest needs the merge operator, available for: "
                f"{', '.join(MERGEABLE_METHODS)}.  The MIN-INCREMENT ladder "
                "is not mergeable (each level's GREEDY-INSERT state depends "
                "on its own segment's bucket boundaries); shard to min-merge "
                "and refeed the representatives if an approximate parallel "
                "ingest is acceptable."
            )
        if backend not in (None, "thread", "process"):
            raise InvalidParameterError(
                f"backend must be None, 'thread', or 'process', got {backend!r}"
            )
        if backend == "process" and not fork_available():
            raise InvalidParameterError(
                "the process backend needs POSIX fork; use backend='thread'"
            )
        if arity < 2:
            raise InvalidParameterError(f"arity must be >= 2, got {arity}")
        if serial_cutoff is not None and serial_cutoff < 1:
            raise InvalidParameterError(
                f"serial_cutoff must be >= 1, got {serial_cutoff}"
            )
        if max_shard_retries < 1:
            raise InvalidParameterError(
                f"max_shard_retries must be >= 1, got {max_shard_retries}"
            )
        if retry_backoff < 0:
            raise InvalidParameterError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff
        self.fault_plan = fault_plan
        self.method = method
        self.buckets = buckets
        self.workers = workers
        self.backend = backend
        self.arity = arity
        self.serial_cutoff = (
            serial_cutoff if serial_cutoff is not None else _AUTO_CUTOFF[method]
        )
        self._metrics = resolve_metrics(metrics)
        self._spec = {
            "method": method,
            "buckets": buckets,
            "working_buckets": working_buckets,
            "hull_epsilon": hull_epsilon,
            "findmin": findmin,
            "backend": summary_backend,
            "instrument": False,
        }
        # Validate the configuration eagerly, like StreamFleet does.
        _build_shard_summary(self._spec, 0)

    @property
    def merge(self):
        """The aggregation merge operator for this method."""
        if self.method == "min-merge":
            return merge_min_merge_summaries
        return merge_pwl_summaries

    def plan(self, total: int) -> ShardPlan:
        """The shard plan ``summarize`` would use for ``total`` items."""
        workers = resolve_workers(
            self.workers, total, serial_cutoff=self.serial_cutoff
        )
        return ShardPlan.split(total, workers)

    # -- execution ---------------------------------------------------------

    def summarize(self, values):
        """Shard-ingest ``values`` and return the combined summary.

        The result satisfies the (1, 2) guarantee against the offline
        optimal ``B``-bucket histogram of the whole stream and is
        bit-identical to :meth:`reference` on the same input -- but its
        buckets generally differ from a single serial summary's (a
        different, equally valid, merge schedule).
        """
        data, n = self._coerce(values)
        plan = self.plan(n)
        if len(plan) == 1:
            return self._run_serial(data)
        backend = self._choose_backend(data, plan)
        if backend == "process":
            children = self._run_process_pool(data, plan)
        else:
            children = self._run_thread_pool(data, plan)
        return self._combine(children, parallel=True)

    def reference(self, values):
        """Serial shard-and-merge oracle: same plan, same tree, no pools.

        The equivalence gate in ``benchmarks/bench_parallel_ingest.py``
        (and ``tests/test_parallel.py``) asserts ``summarize`` output is
        bit-identical to this.
        """
        data, n = self._coerce(values)
        plan = self.plan(n)
        if len(plan) == 1:
            return self._run_serial(data)
        children = [
            _summarize_shard(data[shard.slice()], shard.start, self._worker_spec())
            for shard in plan
        ]
        return self._combine(children, parallel=False)

    # -- internals ---------------------------------------------------------

    def _coerce(self, values) -> tuple:
        arr = as_batch_array(values)
        if arr is not None:
            data = arr
        elif hasattr(values, "__len__") and hasattr(values, "__getitem__"):
            data = values  # sliceable but not batchable: scalar-ingest shards
        else:
            data = list(values)
        n = len(data)
        if n == 0:
            raise InvalidParameterError("cannot summarize an empty stream")
        return data, n

    def _worker_spec(self) -> dict:
        spec = dict(self._spec)
        spec["instrument"] = self._metrics is not None
        return spec

    def _run_serial(self, data):
        summary = _make_summary(self._spec, self._metrics, 0)
        summary.extend(data)
        return summary

    def _choose_backend(self, data, plan: ShardPlan) -> str:
        if self.backend is not None:
            return self.backend
        if not fork_available():
            return "thread"
        min_shard = min(shard.count for shard in plan)
        if min_shard < _PROCESS_MIN_SHARD[self.method]:
            return "thread"
        return "process"

    def _take_fault(self, index: int) -> Optional[str]:
        """Consume one injected fault for shard ``index``, if planned."""
        plan = self.fault_plan
        if plan is None:
            return None
        if plan.take(f"shard.kill:{index}"):
            return "kill"
        if plan.take(f"shard:{index}"):
            return "poison"
        return None

    def _note_failures(self, count: int) -> None:
        if count and self._metrics is not None:
            self._metrics.on_failure(count)

    def _run_with_recovery(
        self, plan: ShardPlan, *, pool_factory, submit_shard, run_inprocess
    ) -> list:
        """Dispatch every shard, retrying failures wave by wave.

        Wave ``k`` resubmits the shards that failed wave ``k-1`` after an
        exponential-backoff sleep, on a fresh pool if the old one broke
        (a worker died).  Shards still failing after
        ``max_shard_retries`` pool attempts run in-process; an in-process
        failure propagates to the caller.
        """
        shards = plan.shards
        results = [None] * len(shards)
        pending = list(range(len(shards)))
        attempt = 0
        pool = pool_factory()
        try:
            while pending:
                if attempt and self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                submitted = []
                failed = []
                broken = False
                for index in pending:
                    inject = self._take_fault(index)
                    try:
                        submitted.append(
                            (index, submit_shard(pool, shards[index], inject))
                        )
                    except BrokenExecutor:
                        broken = True
                        failed.append(index)
                for index, future in submitted:
                    try:
                        results[index] = future.result()
                    except Exception as exc:
                        if isinstance(exc, BrokenExecutor):
                            broken = True
                        failed.append(index)
                attempt += 1
                self._note_failures(len(failed))
                if failed and broken:
                    pool.shutdown(wait=False)
                    pool = pool_factory()
                if attempt >= self.max_shard_retries:
                    for index in sorted(failed):
                        results[index] = run_inprocess(
                            shards[index], self._take_fault(index)
                        )
                    pending = []
                else:
                    pending = sorted(failed)
        finally:
            pool.shutdown(wait=True)
        return results

    def _run_thread_pool(self, data, plan: ShardPlan) -> list:
        spec = self._worker_spec()

        def attempt(shard, inject):
            # Threads share the process, so kill degrades to poison here.
            _maybe_inject("poison" if inject else None)
            return _summarize_shard(data[shard.slice()], shard.start, spec)

        return self._run_with_recovery(
            plan,
            pool_factory=lambda: ThreadPoolExecutor(max_workers=len(plan)),
            submit_shard=lambda pool, shard, inject: pool.submit(
                attempt, shard, inject
            ),
            run_inprocess=attempt,
        )

    def _run_process_pool(self, data, plan: ShardPlan) -> list:
        global _FORK_PAYLOAD
        spec = self._worker_spec()
        context = multiprocessing.get_context("fork")
        # Publish the array, then fork: workers inherit a zero-copy view.
        # The payload stays published across the recovery waves so pools
        # re-created after a worker death re-fork the same view.
        _FORK_PAYLOAD = data
        try:
            payloads = self._run_with_recovery(
                plan,
                pool_factory=lambda: ProcessPoolExecutor(
                    max_workers=len(plan), mp_context=context
                ),
                submit_shard=lambda pool, shard, inject: pool.submit(
                    _forked_shard, (shard.start, shard.stop, spec, inject)
                ),
                run_inprocess=lambda shard, inject: _inprocess_payload(
                    data, shard, spec, inject
                ),
            )
        finally:
            _FORK_PAYLOAD = None
        return [_rebuild_child(payload, spec) for payload in payloads]

    def _combine(self, children: list, *, parallel: bool):
        if len(children) == 1:
            return children[0]
        root_metrics = self._metrics
        if len(children) > self.arity and parallel:
            # Each tree level's merges are independent; run them on a small
            # thread pool so the combine is log-depth in wall-clock too.
            with ThreadPoolExecutor(
                max_workers=max(2, len(children) // self.arity)
            ) as pool:
                return tree_reduce(
                    children,
                    self.merge,
                    buckets=self.buckets,
                    arity=self.arity,
                    root_metrics=root_metrics,
                    mapper=lambda fn, groups: list(pool.map(fn, groups)),
                )
        return tree_reduce(
            children,
            self.merge,
            buckets=self.buckets,
            arity=self.arity,
            root_metrics=root_metrics,
        )


def summarize_parallel(
    values,
    buckets: int,
    *,
    method: str = "min-merge",
    workers: Union[None, int, str] = "auto",
    **kwargs,
):
    """One-shot convenience: shard-ingest ``values`` and return the summary.

    Equivalent to ``ParallelSummarizer(method, buckets=buckets,
    workers=workers, **kwargs).summarize(values)``; see the class for the
    keyword surface and ``api.summarize(..., workers=)`` for the
    histogram-returning entry point.
    """
    summarizer = ParallelSummarizer(
        method, buckets=buckets, workers=workers, **kwargs
    )
    return summarizer.summarize(values)
