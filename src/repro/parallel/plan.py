"""Shard planning: contiguous splits of a stream for parallel ingest.

A :class:`ShardPlan` cuts ``[0, total)`` into ``P`` contiguous, non-empty,
index-annotated shards.  Contiguity is what makes the plan mergeable: each
shard's summary covers a slice of the shared index space, so the shard
summaries are exactly the "consecutive stream segments" that
:func:`repro.core.aggregation.merge_min_merge_summaries` combines with the
(1, 2) guarantee intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class Shard:
    """One contiguous piece of the stream: indices ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def count(self) -> int:
        """Number of items the shard covers."""
        return self.stop - self.start

    def slice(self) -> slice:
        """The shard as a ``slice`` for sequence/ndarray views."""
        return slice(self.start, self.stop)


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous split of ``total`` items into non-empty shards.

    Build with :meth:`split`; iterate to get the :class:`Shard` pieces in
    stream order.  Shard sizes differ by at most one item (the first
    ``total % workers`` shards take the extra), so worker load is balanced
    without breaking contiguity.
    """

    total: int
    shards: tuple[Shard, ...]

    @classmethod
    def split(cls, total: int, workers: int) -> "ShardPlan":
        """Plan ``min(workers, total)`` contiguous shards over ``total`` items."""
        if total < 1:
            raise InvalidParameterError(
                f"cannot shard an empty stream (total={total})"
            )
        if workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {workers}"
            )
        pieces = min(workers, total)
        base, extra = divmod(total, pieces)
        shards = []
        start = 0
        for i in range(pieces):
            stop = start + base + (1 if i < extra else 0)
            shards.append(Shard(i, start, stop))
            start = stop
        return cls(total=total, shards=tuple(shards))

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)
