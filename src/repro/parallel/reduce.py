"""Log-depth tree reduction over the aggregation merge operator.

Combining ``P`` shard summaries with one flat ``merge(children)`` call is a
single O(P * B) reduction at the root; a pairwise tree instead merges
``arity`` siblings at a time over ``ceil(log_arity(P))`` levels, so the
combine itself can run level-by-level on an executor (each group within a
level is independent).  The (1, 2) guarantee holds for *any* tree shape --
every internal node is itself a valid merge of consecutive segments
(property-tested in ``tests/test_aggregation.py``) -- but the resulting
bucket boundaries depend on the shape, so equivalence gates must compare
runs that use the same plan **and** the same tree.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.exceptions import InvalidParameterError


def tree_reduce(
    children: Sequence,
    merge: Callable,
    *,
    buckets: Optional[int] = None,
    arity: int = 2,
    root_metrics=None,
    mapper: Optional[Callable] = None,
):
    """Reduce shard summaries to one summary via an ``arity``-ary merge tree.

    Parameters
    ----------
    children:
        Shard summaries in stream order (contiguous index ranges).
    merge:
        ``merge_min_merge_summaries`` or ``merge_pwl_summaries`` (or any
        callable with the same ``(summaries, *, buckets, metrics)`` shape).
    buckets:
        Target ``B`` forwarded to every merge call.
    arity:
        Fan-in per tree node; ``2`` is the log-depth pairwise default, and
        ``arity >= len(children)`` degenerates to a single flat fold.
    root_metrics:
        ``metrics=`` argument for the final (root) merge only, so a
        caller-owned registry receives the fully aggregated counters
        exactly once.
    mapper:
        Optional ``map``-shaped callable (e.g. ``ThreadPoolExecutor.map``)
        used to run each level's independent merges concurrently; defaults
        to the builtin serial ``map``.  The result is identical either way
        -- the tree shape, not the schedule, determines the buckets.
    """
    if arity < 2:
        raise InvalidParameterError(f"merge arity must be >= 2, got {arity}")
    level = list(children)
    if not level:
        raise InvalidParameterError("cannot reduce zero summaries")
    if mapper is None:
        mapper = map
    while len(level) > 1:
        groups = [level[i : i + arity] for i in range(0, len(level), arity)]
        is_root = len(groups) == 1

        def _merge_group(group, _root=is_root):
            if len(group) == 1:
                return group[0]
            kwargs = {"buckets": buckets}
            if _root and root_metrics is not None:
                kwargs["metrics"] = root_metrics
            return merge(group, **kwargs)

        level = list(mapper(_merge_group, groups))
    return level[0]
