"""Multi-core sharded summarization over the aggregation merge operator.

The sensor-network computation of the paper, run on one machine's cores:
split the stream into contiguous shards, batch-ingest each shard in a
worker, and combine the shard summaries with the merge operator in a
log-depth tree -- the (1, 2) guarantee survives, and results are
deterministic regardless of scheduling.  See ``repro/parallel/executor.py``
for the full design notes and ``docs/API.md`` ("Parallel ingest") for the
user surface.
"""

from repro.parallel.executor import (
    MERGEABLE_METHODS,
    ParallelSummarizer,
    available_cpus,
    fork_available,
    map_tasks,
    resolve_workers,
    summarize_parallel,
)
from repro.parallel.plan import Shard, ShardPlan
from repro.parallel.reduce import tree_reduce

__all__ = [
    "MERGEABLE_METHODS",
    "ParallelSummarizer",
    "Shard",
    "ShardPlan",
    "available_cpus",
    "fork_available",
    "map_tasks",
    "resolve_workers",
    "summarize_parallel",
    "tree_reduce",
]
