"""Legacy-compatible build shim.

All project metadata lives in pyproject.toml; this file only exists so
that ``pip install -e . --no-build-isolation --no-use-pep517`` works in
offline environments that lack the ``wheel`` package (PEP 660 editable
installs require it).
"""

from setuptools import setup

setup()
